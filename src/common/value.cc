#include "src/common/value.h"

#include <string>

namespace dissodb {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt64: return "INT64";
    case ValueType::kDouble: return "DOUBLE";
    case ValueType::kString: return "STRING";
  }
  return "UNKNOWN";
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kInt64: return std::to_string(i_);
    case ValueType::kDouble: return std::to_string(d_);
    case ValueType::kString: return "str#" + std::to_string(i_);
  }
  return "?";
}

}  // namespace dissodb
