// Small string helpers: splitting, trimming, SQL LIKE matching, formatting.
#ifndef DISSODB_COMMON_STRING_UTIL_H_
#define DISSODB_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace dissodb {

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// SQL LIKE matching with '%' (any sequence) and '_' (any one char).
/// Case-sensitive, no escape syntax.
bool LikeMatch(std::string_view text, std::string_view pattern);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

}  // namespace dissodb

#endif  // DISSODB_COMMON_STRING_UTIL_H_
