// Compact tagged scalar value used by tuples throughout the engine.
//
// Strings are dictionary-encoded (see storage/database.h StringPool), so a
// Value is a fixed 16-byte POD that hashes and compares cheaply — the idiom
// used by analytic engines for join keys.
#ifndef DISSODB_COMMON_VALUE_H_
#define DISSODB_COMMON_VALUE_H_

#include <cstdint>
#include <string>

#include "src/common/hash.h"

namespace dissodb {

/// Column / value type.
enum class ValueType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,  // dictionary code into a StringPool
};

const char* ValueTypeName(ValueType t);

/// \brief A 16-byte tagged scalar: INT64, DOUBLE, or dictionary-coded STRING.
///
/// Equality and ordering compare the tag first, then the payload; two string
/// values compare by dictionary code (valid within one StringPool).
class Value {
 public:
  Value() : type_(ValueType::kInt64), i_(0) {}

  static Value Int64(int64_t v) {
    Value x;
    x.type_ = ValueType::kInt64;
    x.i_ = v;
    return x;
  }
  static Value Double(double v) {
    Value x;
    x.type_ = ValueType::kDouble;
    x.d_ = v;
    return x;
  }
  /// `code` is a dictionary code assigned by a StringPool.
  static Value StringCode(int64_t code) {
    Value x;
    x.type_ = ValueType::kString;
    x.i_ = code;
    return x;
  }
  /// Reconstructs a value from its tag and raw 64-bit payload (the columnar
  /// storage representation; inverse of RawBits()).
  static Value FromRawBits(ValueType t, uint64_t bits) {
    Value x;
    x.type_ = t;
    x.i_ = static_cast<int64_t>(bits);
    return x;
  }

  ValueType type() const { return type_; }
  int64_t AsInt64() const { return i_; }
  double AsDouble() const { return d_; }
  int64_t AsStringCode() const { return i_; }

  /// Raw 64-bit payload (for hashing; doubles hashed by bit pattern).
  uint64_t RawBits() const { return static_cast<uint64_t>(i_); }

  bool operator==(const Value& o) const {
    return type_ == o.type_ && i_ == o.i_;
  }
  bool operator!=(const Value& o) const { return !(*this == o); }
  bool operator<(const Value& o) const {
    if (type_ != o.type_) return type_ < o.type_;
    if (type_ == ValueType::kDouble) return d_ < o.d_;
    return i_ < o.i_;
  }

  size_t Hash() const {
    return static_cast<size_t>(
        Mix64(static_cast<uint64_t>(type_) * 0x100000001b3ULL ^ RawBits()));
  }

  /// Debug rendering; string values print as "str#<code>" without a pool.
  std::string ToString() const;

 private:
  ValueType type_;
  union {
    int64_t i_;
    double d_;
  };
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace dissodb

#endif  // DISSODB_COMMON_VALUE_H_
