#include "src/common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace dissodb {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer algorithm with backtracking to the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n) + 1);
    vsnprintf(out.data(), out.size(), fmt, ap2);
    out.resize(static_cast<size_t>(n));
  }
  va_end(ap2);
  return out;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

}  // namespace dissodb
