// Lifted safe-plan compiler and safety analyzer (Dalvi–Suciu dichotomy).
//
// Hierarchical queries have exact PTIME extensional plans (Theorem 2): the
// classic lifted rules — independent join (connected components),
// independent project (separator variables), base atom — compile them
// directly, with no cut-set enumeration and no plan lattice. This module
// implements that recursion over work atoms, generalized with the paper's
// Section 3.3 schema knowledge (deterministic relations, FD chase), and
// extends it to *unsafe* queries: the rules are applied as far as they
// reach (hierarchical subqueries compile exactly), and only the genuinely
// unsafe residues fall back to dissociation's min-over-minimal-cuts.
//
// The residue fallback mirrors src/dissociation/single_plan.cc decision
// for decision, and the separator rule only short-circuits where the
// separator set provably *is* the unique minimal (p-)cut — every cut-set
// must contain the full separator set (a remaining separator variable
// keeps all (probabilistic) atoms connected), so if removing it
// disconnects the atoms, {separator set} is the one minimal cut and
// Min-over-cuts collapses to a plain projection. Consequence: the emitted
// plan is bit-identical to BuildSinglePlan's on every query; what changes
// is compile cost (safe levels skip the Gosper subset scan entirely) and
// the exactness verdict the engine can route on.
#ifndef DISSODB_LIFT_SAFE_PLAN_H_
#define DISSODB_LIFT_SAFE_PLAN_H_

#include "src/common/status.h"
#include "src/dissociation/minimal_plans.h"
#include "src/plan/plan.h"
#include "src/query/analysis.h"
#include "src/query/cq.h"

namespace dissodb {
namespace lift {

struct LiftOptions {
  /// Memoize subproblems by (atom set, head) so shared subplans come out as
  /// one DAG node (Opt. 2); matches SinglePlanOptions::reuse_common_subplans.
  bool reuse_common_subplans = true;
  /// Which schema knowledge the rules may exploit (Section 3.3).
  PlanEnumOptions enum_opts;
};

/// Result of a lifted compilation.
struct LiftedPlan {
  PlanPtr plan;
  /// True iff every recursion level resolved by a lifted rule: the plan is
  /// the unique safe plan and its score is the exact probability
  /// (Corollary 28). False as soon as one residue needed dissociation.
  bool exact = false;
  /// Distinct subproblems where no lifted rule applied and the compiler
  /// fell back to Min over minimal cut-sets (dissociation upper bounds).
  size_t unsafe_residues = 0;
  /// Recursion levels resolved by the separator rule (each one skips a
  /// full cut-set enumeration the legacy builder would have run).
  size_t separator_shortcuts = 0;
};

/// Compiles `q` with the lifted rules, falling back to dissociation only at
/// unsafe residues. The emitted plan is structurally identical to
/// BuildSinglePlan(q, sk, ...) under matching options.
Result<LiftedPlan> CompileSafePlan(const ConjunctiveQuery& q,
                                   const SchemaKnowledge& sk,
                                   const LiftOptions& opts = {});

/// Safety verdict without building a plan (and without ever enumerating
/// cut-sets — unlike IsSafeQuery, which runs Algorithm 1).
struct SafetyAnalysis {
  /// True iff the lifted rules resolve every level: the query is safe given
  /// the knowledge and has an exact extensional plan.
  bool safe = false;
  /// Stuck subproblems at the recursion frontier (0 iff safe). Unlike
  /// LiftedPlan::unsafe_residues this does not descend into cut branches.
  size_t unsafe_residues = 0;
};
SafetyAnalysis AnalyzeSafety(const ConjunctiveQuery& q,
                             const SchemaKnowledge& sk,
                             const PlanEnumOptions& opts = {});

}  // namespace lift
}  // namespace dissodb

#endif  // DISSODB_LIFT_SAFE_PLAN_H_
