#include "src/lift/safe_plan.h"

#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/hash.h"
#include "src/dissociation/dissociation.h"
#include "src/query/cuts.h"

namespace dissodb {
namespace lift {

namespace {

struct MemoKey {
  uint64_t atom_set;
  VarMask head;
  bool operator==(const MemoKey& o) const {
    return atom_set == o.atom_set && head == o.head;
  }
};
struct MemoKeyHash {
  size_t operator()(const MemoKey& k) const {
    size_t h = Mix64(k.atom_set);
    HashCombine(&h, Mix64(k.head));
    return h;
  }
};

/// The separator rule's side condition: `sep` is the unique minimal
/// (p-)cut-set. Every (p-)cut-set contains all of `sep` — while one of its
/// variables remains, all (probabilistic) atoms stay connected through it —
/// so it suffices that removing `sep` itself disconnects the atoms.
bool SeparatorIsTheCut(std::span<const WorkAtom> atoms, VarMask evars,
                       VarMask sep, bool use_dr) {
  if (sep == 0) return false;
  if (use_dr) return CountProbComponents(atoms, evars & ~sep) >= 2;
  return ConnectedComponents(atoms, evars & ~sep).size() >= 2;
}

/// Mirrors SinglePlanBuilder (src/dissociation/single_plan.cc) with the
/// lifted separator rule short-circuiting the cut-set enumeration wherever
/// it provably yields the same (single-cut) result. Decisions, recursion
/// order, and memoization granularity are kept identical so the emitted
/// plan is bit-for-bit the legacy one.
class LiftCompiler {
 public:
  LiftCompiler(const ConjunctiveQuery& q, std::vector<WorkAtom> atoms,
               bool use_dr, bool memoize)
      : q_(q), atoms_(std::move(atoms)), use_dr_(use_dr), memoize_(memoize) {}

  Result<LiftedPlan> Run() {
    std::vector<int> all;
    for (int i = 0; i < q_.num_atoms(); ++i) all.push_back(i);
    auto plan = Rec(all, q_.HeadMask());
    if (!plan.ok()) return plan.status();
    LiftedPlan out;
    out.plan = std::move(*plan);
    out.exact = unsafe_residues_ == 0;
    out.unsafe_residues = unsafe_residues_;
    out.separator_shortcuts = separator_shortcuts_;
    return out;
  }

 private:
  PlanPtr Leaf(int atom_idx) const {
    const WorkAtom& a = atoms_[atom_idx];
    return MakeScan(a.atom_idx, q_.AtomMask(a.atom_idx),
                    a.vars & ~q_.AtomMask(a.atom_idx));
  }

  Result<PlanPtr> Rec(const std::vector<int>& idxs, VarMask head) {
    std::vector<WorkAtom> atoms;
    for (int i : idxs) atoms.push_back(atoms_[i]);
    VarMask all = UnionVars(atoms);
    head &= all;

    uint64_t atom_set = 0;
    for (int i : idxs) atom_set |= uint64_t{1} << i;
    MemoKey key{atom_set, head};
    if (memoize_) {
      auto it = memo_.find(key);
      if (it != memo_.end()) return it->second;
    }

    int n_prob = 0;
    for (const auto& a : atoms) n_prob += a.probabilistic ? 1 : 0;
    const bool stop = use_dr_ ? n_prob <= 1 : atoms.size() == 1;

    PlanPtr result;
    if (stop) {
      // Base-atom rule (deterministic tails dissociate for free, Lemma 22).
      if (idxs.size() == 1) {
        result = Leaf(idxs[0]);
        if (result->head != head) result = MakeProject(head, result);
      } else {
        VarMask evars = all & ~head;
        std::vector<WorkAtom> datoms = atoms;
        for (auto& a : datoms) {
          if (!a.probabilistic) a.vars |= evars;
        }
        auto base = SafePlanForWorkAtoms(q_, std::move(datoms), head);
        if (!base.ok()) return base.status();
        result = *base;
      }
    } else {
      VarMask evars = all & ~head;
      auto comps = ConnectedComponents(atoms, evars);
      if (comps.size() > 1) {
        // Independent-join rule.
        std::vector<PlanPtr> children;
        for (const auto& comp : comps) {
          std::vector<int> sub;
          for (int ci : comp) sub.push_back(idxs[ci]);
          std::vector<WorkAtom> sub_atoms;
          for (int i : sub) sub_atoms.push_back(atoms_[i]);
          auto child = Rec(sub, head & UnionVars(sub_atoms));
          if (!child.ok()) return child.status();
          children.push_back(std::move(*child));
        }
        result = MakeJoin(std::move(children));
      } else {
        // Independent-project rule: when the separator set is the unique
        // minimal (p-)cut, Min over cuts is a single projection — emit it
        // directly instead of enumerating 2^|evars| cut candidates.
        VarMask sep = use_dr_ ? ProbSeparatorVars(atoms, evars)
                              : SeparatorVars(atoms, evars);
        if (SeparatorIsTheCut(atoms, evars, sep, use_dr_)) {
          ++separator_shortcuts_;
          auto child = Rec(idxs, head | sep);
          if (!child.ok()) return child.status();
          result = *child;
          if (result->head != head) result = MakeProject(head, result);
        } else {
          // Unsafe residue: dissociation's Min over minimal cut-sets,
          // exactly as the legacy builder. Nested hierarchical subqueries
          // still resolve by the lifted rules on the way down.
          ++unsafe_residues_;
          auto cuts = use_dr_ ? MinPCuts(atoms, evars) : MinCuts(atoms, evars);
          if (!cuts.ok()) return cuts.status();
          if (cuts->empty()) {
            return Status::Internal("connected query with no cut-set");
          }
          std::vector<PlanPtr> branches;
          for (VarMask y : *cuts) {
            auto child = Rec(idxs, head | y);
            if (!child.ok()) return child.status();
            PlanPtr branch = *child;
            if (branch->head != head) branch = MakeProject(head, branch);
            branches.push_back(std::move(branch));
          }
          result = MakeMin(std::move(branches));
        }
      }
    }
    if (memoize_) memo_.emplace(key, result);
    return result;
  }

  const ConjunctiveQuery& q_;
  std::vector<WorkAtom> atoms_;  // indexed by original atom index
  bool use_dr_;
  bool memoize_;
  size_t unsafe_residues_ = 0;
  size_t separator_shortcuts_ = 0;
  std::unordered_map<MemoKey, PlanPtr, MemoKeyHash> memo_;
};

std::vector<WorkAtom> AtomsUnderKnowledge(const ConjunctiveQuery& q,
                                          const SchemaKnowledge& sk,
                                          const PlanEnumOptions& opts) {
  if (opts.use_fds && !sk.fds.empty()) {
    return ApplyDissociation(q, sk, ChaseDissociation(q, sk));
  }
  return MakeWorkAtoms(q, sk);
}

/// Plan-free analysis recursion: same rules, but a stuck subproblem stops
/// the walk (no descent into cut branches — analysis never enumerates).
void AnalyzeRec(std::vector<WorkAtom> atoms, VarMask head, bool use_dr,
                size_t* residues) {
  VarMask all = UnionVars(atoms);
  head &= all;

  int n_prob = 0;
  for (const auto& a : atoms) n_prob += a.probabilistic ? 1 : 0;
  if (use_dr ? n_prob <= 1 : atoms.size() <= 1) return;

  VarMask evars = all & ~head;
  auto comps = ConnectedComponents(atoms, evars);
  if (comps.size() > 1) {
    for (const auto& comp : comps) {
      std::vector<WorkAtom> sub;
      for (int ci : comp) sub.push_back(atoms[ci]);
      VarMask sub_head = head & UnionVars(sub);
      AnalyzeRec(std::move(sub), sub_head, use_dr, residues);
    }
    return;
  }
  VarMask sep = use_dr ? ProbSeparatorVars(atoms, evars)
                       : SeparatorVars(atoms, evars);
  if (SeparatorIsTheCut(atoms, evars, sep, use_dr)) {
    AnalyzeRec(std::move(atoms), head | sep, use_dr, residues);
    return;
  }
  ++*residues;
}

}  // namespace

Result<LiftedPlan> CompileSafePlan(const ConjunctiveQuery& q,
                                   const SchemaKnowledge& sk,
                                   const LiftOptions& opts) {
  LiftCompiler c(q, AtomsUnderKnowledge(q, sk, opts.enum_opts),
                 opts.enum_opts.use_deterministic, opts.reuse_common_subplans);
  return c.Run();
}

SafetyAnalysis AnalyzeSafety(const ConjunctiveQuery& q,
                             const SchemaKnowledge& sk,
                             const PlanEnumOptions& opts) {
  SafetyAnalysis out;
  AnalyzeRec(AtomsUnderKnowledge(q, sk, opts), q.HeadMask(),
             opts.use_deterministic, &out.unsafe_residues);
  out.safe = out.unsafe_residues == 0;
  return out;
}

}  // namespace lift
}  // namespace dissodb
