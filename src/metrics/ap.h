// Ranking-quality metrics (Section 5 "Ranking quality"):
// AP@10 with analytic tie handling (McSherry & Najork style expectations)
// and MAP aggregation.
//
// The paper's definition: AP@10 = (1/10) * sum_{k=1..10} P@k, where P@k is
// the fraction of the top-k answers by ground truth that are also in the
// top-k answers returned. Ties (in either ranking) are resolved in
// expectation over uniformly random tie-breaks, computed in closed form.
// With n tied answers this gives the "random average precision" baseline
// (1/10) * sum_k k/n, e.g. 0.220 for n = 25.
#ifndef DISSODB_METRICS_AP_H_
#define DISSODB_METRICS_AP_H_

#include <cstddef>
#include <vector>

namespace dissodb {

/// Expected AP@`depth` of the ranking induced by `system` scores against the
/// ranking induced by `ground_truth` scores. Both vectors index the same
/// answer set (element i = the same answer). Higher score = better rank.
double AveragePrecisionAtK(const std::vector<double>& ground_truth,
                           const std::vector<double>& system, int depth = 10);

/// The no-information baseline: every system score tied.
double RandomBaselineAP(size_t num_answers, int depth = 10);

/// Per-answer probability of membership in the top-k under random
/// tie-breaking (helper; exposed for tests).
std::vector<double> TopKMembershipProbability(const std::vector<double>& scores,
                                              int k);

/// \brief Streaming mean/stddev aggregator for MAP over repeated experiments.
class MeanStd {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }
  size_t count() const { return n_; }
  double mean() const { return mean_; }
  double stddev() const;

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace dissodb

#endif  // DISSODB_METRICS_AP_H_
