#include "src/metrics/ap.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dissodb {

std::vector<double> TopKMembershipProbability(const std::vector<double>& scores,
                                              int k) {
  const size_t n = scores.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  std::vector<double> prob(n, 0.0);
  size_t taken = 0;
  size_t i = 0;
  while (i < n && taken < static_cast<size_t>(k)) {
    // Tie group [i, j).
    size_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    size_t group = j - i;
    size_t remaining = static_cast<size_t>(k) - taken;
    if (group <= remaining) {
      for (size_t g = i; g < j; ++g) prob[order[g]] = 1.0;
      taken += group;
    } else {
      double p = static_cast<double>(remaining) / static_cast<double>(group);
      for (size_t g = i; g < j; ++g) prob[order[g]] = p;
      taken = static_cast<size_t>(k);
    }
    i = j;
  }
  return prob;
}

double AveragePrecisionAtK(const std::vector<double>& ground_truth,
                           const std::vector<double>& system, int depth) {
  const size_t n = ground_truth.size();
  if (n == 0 || system.size() != n) return 0.0;
  double ap = 0.0;
  for (int k = 1; k <= depth; ++k) {
    std::vector<double> gt_k = TopKMembershipProbability(ground_truth, k);
    std::vector<double> sys_k = TopKMembershipProbability(system, k);
    // Tie-breaks of the two rankings are independent, so the expected
    // overlap is the sum of membership-probability products.
    double expected_overlap = 0.0;
    for (size_t i = 0; i < n; ++i) expected_overlap += gt_k[i] * sys_k[i];
    ap += expected_overlap / static_cast<double>(k);
  }
  return ap / static_cast<double>(depth);
}

double RandomBaselineAP(size_t num_answers, int depth) {
  if (num_answers == 0) return 0.0;
  double ap = 0.0;
  for (int k = 1; k <= depth; ++k) {
    double kk = std::min<double>(k, static_cast<double>(num_answers));
    // E|topk ∩ topk_GT| with all system scores tied = k * (k/n) capped.
    ap += kk / static_cast<double>(num_answers);
  }
  return ap / static_cast<double>(depth);
}

double MeanStd::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

}  // namespace dissodb
