#!/usr/bin/env python3
"""Schema check for DissoDB Chrome trace-event JSON exports.

Usage: check_trace.py TRACE.json

Validates the file micro_batch writes under DISSODB_TRACE_EXPORT (and any
QueryTrace::ToChromeJson() output): well-formed JSON in the Chrome
trace-event format, complete ("X") events only, and a consistent span tree
in the args (dense 1-based span ids, valid parent links, exactly one root,
children nested inside their parents' time ranges).
"""
import json
import sys


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: check_trace.py TRACE.json")
    try:
        with open(sys.argv[1]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {sys.argv[1]}: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty array")

    spans = {}
    for i, ev in enumerate(events):
        where = f"event {i}"
        for key in ("name", "ph", "ts", "dur", "pid", "tid", "args"):
            if key not in ev:
                fail(f"{where}: missing {key}")
        if ev["ph"] != "X":
            fail(f"{where}: expected complete ('X') events, got {ev['ph']!r}")
        if not isinstance(ev["name"], str) or not ev["name"]:
            fail(f"{where}: name must be a non-empty string")
        for key in ("ts", "dur"):
            if not isinstance(ev[key], (int, float)) or ev[key] < 0:
                fail(f"{where}: {key} must be a non-negative number")
        args = ev["args"]
        if "span_id" not in args or "parent_id" not in args:
            fail(f"{where}: args must carry span_id and parent_id")
        sid, pid = args["span_id"], args["parent_id"]
        if not isinstance(sid, int) or sid < 1:
            fail(f"{where}: span_id must be a positive integer")
        if not isinstance(pid, int) or pid < 0:
            fail(f"{where}: parent_id must be a non-negative integer")
        if sid in spans:
            fail(f"{where}: duplicate span_id {sid}")
        spans[sid] = (pid, ev["ts"], ev["ts"] + ev["dur"], ev["name"])

    n = len(spans)
    if sorted(spans) != list(range(1, n + 1)):
        fail(f"span ids must be dense 1..{n}, got {sorted(spans)}")

    roots = 0
    for sid, (pid, start, end, name) in spans.items():
        if pid == 0:
            roots += 1
            continue
        if pid not in spans:
            fail(f"span {sid} ({name}): unknown parent {pid}")
        if pid >= sid:
            fail(f"span {sid} ({name}): parent {pid} must open first")
        p_start, p_end = spans[pid][1], spans[pid][2]
        # 1us slack: timestamps are rounded to 1e-3 us independently.
        if start < p_start - 1.0 or end > p_end + 1.0:
            fail(f"span {sid} ({name}): [{start}, {end}] escapes parent "
                 f"{pid} [{p_start}, {p_end}]")
    if roots != 1:
        fail(f"expected exactly one root span, found {roots}")

    names = [s[3] for s in spans.values()]
    if not any(name.startswith("execute") for name in names):
        fail("missing the root 'execute ...' span")
    if "evaluate" not in names:
        fail("missing the 'evaluate' stage span")

    print(f"OK: {n} spans, 1 root, tree consistent "
          f"({sum(1 for s in spans.values() if s[3].startswith('scan'))} "
          f"scan spans)")


if __name__ == "__main__":
    main()
