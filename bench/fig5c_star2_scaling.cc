// Figure 5c: 2-star query runtime vs database size.
//
// Paper shape: the 2-star has only 2 minimal plans, so Opt1 and Opt1-2
// coincide; the probabilistic overhead over deterministic SQL is small.
#include <cstdio>

#include "bench/bench_common.h"

using namespace dissodb;        // NOLINT
using namespace dissodb::bench; // NOLINT

int main() {
  std::printf("Figure 5c: 2-star query, runtime vs tuples per table\n\n");
  PrintHeader({"n", "#plans", "AllPlans", "Opt1", "Opt1-2", "Opt1-3", "SQL"});
  double scale = BenchScale();
  for (size_t n : {size_t{100}, size_t{1000}, size_t{10000}, size_t{100000}}) {
    size_t nn = static_cast<size_t>(n * scale);
    StarSpec spec;
    spec.k = 2;
    spec.n = nn;
    spec.seed = 2020 + nn;
    Database db = MakeStarDatabase(spec);
    ConjunctiveQuery q = MakeStarQuery(2);
    MethodTiming t = TimeAllMethods(db, q);
    PrintRow({std::to_string(nn), std::to_string(t.num_plans),
              FmtMs(t.all_plans_ms), FmtMs(t.opt1_ms), FmtMs(t.opt12_ms),
              FmtMs(t.opt123_ms), FmtMs(t.standard_sql_ms)});
  }
  return 0;
}
