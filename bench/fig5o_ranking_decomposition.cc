// Figure 5o: decomposition of ranking quality — how much of the exact
// ranking is explained by (a) lineage size alone, (b) lineage size plus the
// relative weights of the input tuples (= the exact ranking on an
// infinitesimally scaled database), and (c) the actual probabilities.
//
// Paper numbers: random baseline 0.220; lineage size 0.515 (38% of the
// span); relative input weights 0.879 (85%); exact 1.0 (100%).
#include <cstdio>

#include "bench/bench_common.h"

using namespace dissodb;        // NOLINT
using namespace dissodb::bench; // NOLINT

int main() {
  std::printf("Figure 5o: what explains the probabilistic ranking "
              "(avg[pi]=0.5, avg[d]~3)\n\n");
  ConjunctiveQuery q = Q3Chain();

  MeanStd lin_ap, weights_ap;
  size_t num_answers = 0;
  for (uint64_t seed = 1; seed <= 7; ++seed) {
    FanoutSpec spec;
    spec.fanout = 3;
    spec.pi_max = 1.0;  // avg[pi] = 0.5
    spec.seed = seed;
    Database db = MakeFanoutDatabase(spec);
    auto lineage = ComputeLineage(db, q);
    if (!lineage.ok()) continue;
    auto gt = ExactFromLineage(*lineage);
    if (!gt.ok()) continue;
    num_answers = gt->size();
    lin_ap.Add(ApAgainst(*gt, LineageSizeRanking(*lineage)));
    // "Relative input weights": the exact ranking after scaling all
    // probabilities close to zero (f = 0.01).
    Database scaled = db.Clone();
    scaled.ScaleProbabilities(0.01);
    auto scaled_gt = ExactProbabilities(scaled, q);
    if (scaled_gt.ok()) weights_ap.Add(ApAgainst(*gt, *scaled_gt));
  }

  double random_ap = RandomBaselineAP(num_answers ? num_answers : 25);
  double span = 1.0 - random_ap;
  auto pct = [&](double ap) {
    return StrFormat("%.0f%%", 100.0 * (ap - random_ap) / span);
  };

  PrintHeader({"ranking method", "MAP@10", "of span"}, 26);
  PrintRow({"random baseline", Fmt(random_ap), "0%"}, 26);
  PrintRow({"lineage size", Fmt(lin_ap.mean()), pct(lin_ap.mean())}, 26);
  PrintRow({"relative input weights", Fmt(weights_ap.mean()),
            pct(weights_ap.mean())}, 26);
  PrintRow({"exact probabilities", "1.000", "100%"}, 26);
  std::printf("\n(paper: 0.220 / 0.515 -> 38%% / 0.879 -> 85%% / 1.0)\n");
  return 0;
}
