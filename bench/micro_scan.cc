// Chunked-scan benchmark: filtered and unfiltered ScanAtom over large
// tables, sequential vs chunk-parallel, plus zone-map pruning on a
// clustered constant predicate.
//
// Table R(a, b) with n rows: column a is clustered (64 runs of n/64
// consecutive rows share one value), column b is uniform random in
// [0, 64). Three scans per size:
//   - unfiltered      q(x,y) :- R(x,y)   zero-copy column sharing
//   - filtered        q(x)   :- R(x, 5)  predicate on the random column
//                                        (no pruning possible: every chunk
//                                        spans the full value range)
//   - zonemap         q(x)   :- R(17, x) predicate on the clustered column
//                                        (zone maps skip ~63/64 chunks)
//
// Every parallel result is verified bit-identical to the sequential one,
// and the zone-map prune rate is asserted >= 90%. Results land in
// BENCH_micro_scan.json; speedup/prune-rate entries are ratios, not
// timings (compare_bench.py skips them via --skip).
//
//   $ ./micro_scan
//   $ DISSODB_REQUIRE_SCAN_SPEEDUP=3 ./micro_scan   # CI acceptance gate
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench/bench_common.h"

using namespace dissodb;         // NOLINT: bench brevity
using namespace dissodb::bench;  // NOLINT

namespace {

constexpr int64_t kValues = 64;  // distinct values per column

Database MakeScanDatabase(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Database db;
  Table t(RelationSchema::AllInt64("R", 2));
  t.Reserve(rows);
  const size_t run = std::max<size_t>(1, rows / kValues);
  for (size_t i = 0; i < rows; ++i) {
    t.AddRow({Value::Int64(static_cast<int64_t>(i / run)),
              Value::Int64(rng.NextInt(0, kValues - 1))},
             0.05 + 0.9 * rng.NextDouble());
  }
  auto r = db.AddTable(std::move(t));
  if (!r.ok()) std::abort();
  return db;
}

bool BitIdentical(const Rel& a, const Rel& b) {
  if (a.NumRows() != b.NumRows() || a.arity() != b.arity()) return false;
  for (size_t r = 0; r < a.NumRows(); ++r) {
    for (int c = 0; c < a.arity(); ++c) {
      if (!(a.At(r, c) == b.At(r, c))) return false;
    }
    if (a.Score(r) != b.Score(r)) return false;
  }
  return true;
}

}  // namespace

int main() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int threads = static_cast<int>(std::min(hw ? hw : 1u, 8u));
  Scheduler pool(threads);

  StringPool qpool;
  auto q_unfiltered = ParseQuery("q(x,y) :- R(x,y)", &qpool);
  auto q_filtered = ParseQuery("q(x) :- R(x, 5)", &qpool);
  auto q_zonemap = ParseQuery("q(x) :- R(17, x)", &qpool);
  if (!q_unfiltered.ok() || !q_filtered.ok() || !q_zonemap.ok()) return 1;

  const std::vector<size_t> sizes = {
      static_cast<size_t>(1'000'000 * BenchScale()),
      static_cast<size_t>(10'000'000 * BenchScale())};

  std::printf("micro_scan: ScanAtom over R(a,b), %d-thread pool, chunk "
              "capacity %zu\n\n",
              threads, Column::default_chunk_capacity());
  PrintHeader({"op", "rows", "ns_row_1t", "ns_row_nt", "speedup"});

  double min_filtered_speedup = 1e300;
  double min_prune_rate = 1.0;
  for (size_t n : sizes) {
    Database db = MakeScanDatabase(n, 12345);

    struct Case {
      const char* name;
      const ConjunctiveQuery* q;
      bool parallel_path;  // whether the N-thread variant is measured
    };
    const Case cases[] = {{"scan_unfiltered", &*q_unfiltered, false},
                          {"scan_filtered", &*q_filtered, true},
                          {"scan_zonemap", &*q_zonemap, true}};
    for (const Case& c : cases) {
      ChunkedScanStats seq_stats;
      auto seq = ScanAtom(db, *c.q, 0, nullptr, nullptr, &seq_stats);
      if (!seq.ok()) {
        std::printf("scan failed: %s\n", seq.status().ToString().c_str());
        return 1;
      }
      const double seq_ms = TimeMs([&] {
        auto r = ScanAtom(db, *c.q, 0, nullptr, nullptr, nullptr);
        if (!r.ok()) std::abort();
      });
      double par_ms = seq_ms;
      if (c.parallel_path) {
        ChunkedScanStats par_stats;
        auto par = ScanAtom(db, *c.q, 0, nullptr, &pool, &par_stats);
        if (!par.ok() || !BitIdentical(*seq, *par)) {
          std::printf("FAIL: %s parallel result differs from sequential\n",
                      c.name);
          return 1;
        }
        par_ms = TimeMs([&] {
          auto r = ScanAtom(db, *c.q, 0, nullptr, &pool, nullptr);
          if (!r.ok()) std::abort();
        });
      }
      const double speedup = seq_ms / par_ms;
      PrintRow({c.name, std::to_string(n), Fmt(seq_ms * 1e6 / n),
                Fmt(par_ms * 1e6 / n),
                c.parallel_path ? Fmt(speedup) : "--"});
      BenchJsonRecord(std::string(c.name) + "_seq", n, seq_ms * 1e6 / n);
      if (c.parallel_path) {
        BenchJsonRecord(std::string(c.name) + "_par", n, par_ms * 1e6 / n);
        BenchJsonRecord(std::string(c.name) + "_speedup", n, speedup);
      }

      if (c.q == &*q_filtered) {
        min_filtered_speedup = std::min(min_filtered_speedup, speedup);
      }
      if (c.q == &*q_zonemap) {
        const size_t total = seq_stats.chunks_scanned + seq_stats.chunks_pruned;
        const double prune_rate =
            total > 0 ? static_cast<double>(seq_stats.chunks_pruned) / total
                      : 0.0;
        min_prune_rate = std::min(min_prune_rate, prune_rate);
        std::printf("  zone maps @%zu rows: %zu/%zu chunks pruned (%.1f%%), "
                    "%zu rows selected\n",
                    n, seq_stats.chunks_pruned, total, 100.0 * prune_rate,
                    seq_stats.rows_selected);
        BenchJsonRecord("zone_prune_rate", n, prune_rate);
      }
    }
  }

  std::printf("\nmin filtered speedup %.2fx @%d threads, min zone prune "
              "rate %.1f%%\n",
              min_filtered_speedup, threads, 100.0 * min_prune_rate);
  BenchJsonWrite("micro_scan");

  // Zone-map acceptance: the clustered constant predicate must skip >= 90%
  // of the chunks. Deterministic (data-dependent, not load-dependent), so
  // always enforced.
  if (min_prune_rate < 0.9) {
    std::printf("FAIL: zone-map prune rate %.1f%% below 90%%\n",
                100.0 * min_prune_rate);
    return 1;
  }
  // Parallel-scan acceptance gate (opt-in so loaded dev machines don't
  // fail runs): DISSODB_REQUIRE_SCAN_SPEEDUP=3 demands the chunk-parallel
  // filtered scan beat the sequential path 3x. The criterion is defined
  // for 4+ threads; on narrower machines parallel fan-out cannot win, so
  // the gate reports and skips instead of failing spuriously.
  if (const char* req = std::getenv("DISSODB_REQUIRE_SCAN_SPEEDUP")) {
    const double required = std::atof(req);
    if (threads < 4) {
      std::printf("speedup gate skipped: only %d pool threads (< 4)\n",
                  threads);
    } else if (required > 0 && min_filtered_speedup < required) {
      std::printf("FAIL: filtered-scan speedup %.2fx below required %.2fx\n",
                  min_filtered_speedup, required);
      return 1;
    }
  }
  return 0;
}
