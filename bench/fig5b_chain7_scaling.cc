// Figure 5b: 7-chain query (132 minimal plans) runtime vs database size.
//
// Paper shape: evaluating the 132 plans separately is far slower than the
// optimized strategies; with Opt1-3 the probabilistic evaluation is within
// a small factor of deterministic SQL.
#include <cstdio>

#include "bench/bench_common.h"

using namespace dissodb;        // NOLINT
using namespace dissodb::bench; // NOLINT

int main() {
  std::printf("Figure 5b: 7-chain query, runtime vs tuples per table\n\n");
  PrintHeader({"n", "#plans", "AllPlans", "Opt1", "Opt1-2", "Opt1-3", "SQL"});
  double scale = BenchScale();
  for (size_t n : {size_t{100}, size_t{1000}, size_t{5000}}) {
    size_t nn = static_cast<size_t>(n * scale);
    ChainSpec spec;
    spec.k = 7;
    spec.n = nn;
    spec.seed = 7070 + nn;
    Database db = MakeChainDatabase(spec);
    ConjunctiveQuery q = MakeChainQuery(7);
    // The all-plans baseline is measured only on the smaller sizes (the
    // paper's point is precisely that it does not scale).
    MethodTiming t = TimeAllMethods(db, q, /*skip_all_plans=*/nn > 2000);
    PrintRow({std::to_string(nn), std::to_string(t.num_plans),
              FmtMs(t.all_plans_ms), FmtMs(t.opt1_ms), FmtMs(t.opt12_ms),
              FmtMs(t.opt123_ms), FmtMs(t.standard_sql_ms)});
  }
  return 0;
}
