// Shared harness for the Figure 2 / Figure 5 reproduction benchmarks.
//
// Every binary prints the paper-shaped table for its figure. Sizes default
// to laptop-friendly values and scale with the environment variable
// DISSODB_BENCH_SCALE (e.g. DISSODB_BENCH_SCALE=10 for a 10x larger run).
#ifndef DISSODB_BENCH_BENCH_COMMON_H_
#define DISSODB_BENCH_BENCH_COMMON_H_

#include <functional>
#include <string>
#include <vector>

#include "src/dissodb.h"

namespace dissodb {
namespace bench {

/// Multiplier from DISSODB_BENCH_SCALE (default 1.0).
double BenchScale();

/// Wall-clock milliseconds of `fn`, reporting the minimum over repeated
/// timed runs. One untimed warm-up run precedes measurement (first-touch
/// page faults, cold caches, lazy thread-local scratch), then `fn` is
/// repeated until `min_ms` of timed work has accumulated — but always at
/// least `min_reps` and at most `max_reps` timed runs, so even slow cases
/// report a min-of-K rather than a single sample.
double TimeMs(const std::function<void()>& fn, double min_ms = 50.0,
              int max_reps = 7, int min_reps = 3);

/// Fixed-width table printing.
void PrintHeader(const std::vector<std::string>& cols, int width = 12);
void PrintRow(const std::vector<std::string>& cells, int width = 12);
std::string Fmt(double v);
std::string FmtMs(double ms);

// ---------------------------------------------------------------------------
// Machine-readable results: every bench binary can record (op, rows,
// ns/row) tuples and flush them to BENCH_<name>.json, so the perf
// trajectory is tracked across PRs by diffing JSON, not console logs.
// ---------------------------------------------------------------------------

/// Records one measurement (op name, input rows, nanoseconds per row).
void BenchJsonRecord(const std::string& op, size_t rows, double ns_per_row);

/// Writes all recorded measurements to `BENCH_<bench_name>.json` in the
/// current directory and clears the record buffer. Format:
///   {"bench": "<name>", "results": [{"op": ..., "rows": N, "ns_per_row": X}]}
void BenchJsonWrite(const std::string& bench_name);

// ---------------------------------------------------------------------------
// Evaluation strategies for the runtime figures (5a-5d).
// ---------------------------------------------------------------------------

struct MethodTiming {
  double all_plans_ms = -1;
  double opt1_ms = -1;
  double opt12_ms = -1;
  double opt123_ms = -1;
  double standard_sql_ms = -1;
  size_t num_answers = 0;
  size_t num_plans = 0;
};

/// Times every strategy of Section 4 on (db, q). Skips the all-plans
/// baseline when `skip_all_plans` (it dominates the runtime for large k).
MethodTiming TimeAllMethods(const Database& db, const ConjunctiveQuery& q,
                            bool skip_all_plans = false);

// ---------------------------------------------------------------------------
// TPC-H harness (5e-5h).
// ---------------------------------------------------------------------------

struct TpchRun {
  int64_t dollar1;
  std::string dollar2;
  double diss_ms = -1;
  double diss_opt3_ms = -1;
  double exact_ms = -1;    ///< -1 = infeasible within budget
  double mc1k_ms = -1;
  double lineage_ms = -1;
  double sql_ms = -1;
  size_t max_lineage = 0;
  size_t answers = 0;
};

/// Runs all Section 5 methods for one ($1, $2) setting.
TpchRun RunTpchMethods(const Database& db, const ConjunctiveQuery& q,
                       int64_t dollar1, const std::string& dollar2,
                       size_t wmc_budget = 2'000'000);

// ---------------------------------------------------------------------------
// Controlled-dissociation workload (5l-5p).
//
// A 3-chain q(a) :- A(a,x), B(x,y), C(y) where each x has exactly `fanout`
// y-partners: the plan that dissociates C copies each C-tuple `fanout`
// times, so avg[d] ~= fanout is directly controllable.
// ---------------------------------------------------------------------------

struct FanoutSpec {
  int num_answers = 25;
  /// Mean x-values per answer; the actual count varies uniformly in
  /// [1, 2*mean-1] so answers have different lineage sizes (otherwise
  /// ranking by lineage size would be exactly the random baseline).
  int suppliers_per_answer = 4;
  int fanout = 3;                ///< y-values per x
  int64_t y_domain = 40;         ///< distinct y values to draw from
  double pi_max = 0.5;           ///< probabilities ~ U[0, pi_max]
  bool const_pi = false;         ///< use pi = pi_max for every tuple
  uint64_t seed = 1;
};

/// Builds the fanout database; the query is Q3Chain() below.
Database MakeFanoutDatabase(const FanoutSpec& spec);
ConjunctiveQuery Q3Chain();

/// Mean number of dissociated copies per tuple of atom `atom_idx` over the
/// top-10 answers (the paper's avg[d]).
double MeanDissociationDegree(const LineageResult& lineage, int atom_idx,
                              size_t top_answers = 10);

/// AP@10 of `scores` against exact ground truth; both aligned to `exact`.
double ApAgainst(const std::vector<RankedAnswer>& exact,
                 const std::vector<RankedAnswer>& scores);

}  // namespace bench
}  // namespace dissodb

#endif  // DISSODB_BENCH_BENCH_COMMON_H_
