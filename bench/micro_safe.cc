// Safe-plan router benchmark: the same hierarchical workload compiled and
// served through the lifted safe-plan fast path vs. the forced-dissociation
// legacy pipeline (EngineOptions::safe_plan_fast_path = false).
//
// Workload: nested-containment chains
//   q() :- R1(x1), R2(x1,x2), ..., Rk(x1,...,xk)
// These are hierarchical (at-sets form a chain under containment), so the
// lifted compiler resolves every level with the separator rule in one
// linear walk. The legacy pipeline compiles the *same plan* but discovers
// each separator by Gosper-enumerating all 2^|evars| candidate cut-sets
// per level, and additionally walks the dissociation lattice in
// EnumerateMinimalPlans — so compile cost grows exponentially in k while
// the lifted cost stays linear. Execution cost is identical by
// construction (bit-identical plans), which the benchmark asserts.
//
// Measurements (BENCH_micro_safe.json):
//   - compile_safe_k{4,8,12}     ns per cold Prepare, fast path on
//   - compile_dissoc_k{4,8,12}   ns per cold Prepare, fast path off
//   - serve_safe_k12             ns per cold Prepare+Execute, fast path on
//   - serve_dissoc_k12           ns per cold Prepare+Execute, fast path off
//   - compile_speedup_k12        ratio (skipped by compare_bench)
//   - unsafe_residue_overhead    ns per cold Prepare of a 3-chain (routed
//                                through the residue path; stays within
//                                noise of legacy — skipped by compare)
//
// Unconditional acceptance gates:
//   - both routes return bit-identical rankings on every workload query,
//   - the safe route reports exact=true / 1 minimal plan on the chains,
//   - cold end-to-end latency (Prepare+Execute) with the fast path on is
//     strictly below the forced-dissociation latency at k=12.
//
//   $ ./micro_safe
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"

using namespace dissodb;         // NOLINT: bench brevity
using namespace dissodb::bench;  // NOLINT

namespace {

/// q() :- R1(x1), R2(x1,x2), ..., Rk(x1..xk).
std::string ChainOfContainmentQuery(int k) {
  std::string text = "q() :- ";
  for (int j = 1; j <= k; ++j) {
    if (j > 1) text += ", ";
    text += "R" + std::to_string(j) + "(";
    for (int v = 1; v <= j; ++v) {
      if (v > 1) text += ",";
      text += "x" + std::to_string(v);
    }
    text += ")";
  }
  return text;
}

/// Tables R1..Rk with `rows` distinct random rows each over a small domain,
/// so joins produce work without blowing up the answer set.
Database ChainDatabase(int k, size_t rows, uint64_t seed) {
  Rng rng(seed);
  Database db;
  for (int j = 1; j <= k; ++j) {
    Table t(RelationSchema::AllInt64("R" + std::to_string(j), j));
    for (size_t i = 0; i < rows; ++i) {
      std::vector<Value> row;
      row.reserve(j);
      for (int v = 0; v < j; ++v) row.push_back(Value::Int64(rng.NextInt(0, 2)));
      t.AddRow(row, 0.05 + 0.9 * rng.NextDouble());
    }
    if (!db.AddTable(std::move(t)).ok()) std::abort();
  }
  return db;
}

EngineOptions RouteOptions(bool fast_path) {
  EngineOptions o;
  o.safe_plan_fast_path = fast_path;
  return o;
}

/// Compile cost at the library level (no engine construction, no plan
/// cache): what one cold Prepare pays on each route.
double LiftedCompileNs(const ConjunctiveQuery& q) {
  SchemaKnowledge none = SchemaKnowledge::None(q);
  return TimeMs(
             [&] {
               auto r = lift::CompileSafePlan(q, none);
               if (!r.ok() || !r->exact) std::abort();
             },
             20.0, 2000, 3) *
         1e6;
}

double LegacyCompileNs(const ConjunctiveQuery& q) {
  // The legacy Prepare enumerates the minimal-plan lattice (for the plan
  // count / Min-merge) and then builds the combined single plan.
  SchemaKnowledge none = SchemaKnowledge::None(q);
  return TimeMs(
             [&] {
               auto plans = EnumerateMinimalPlans(q, none);
               if (!plans.ok() || plans->size() != 1) std::abort();
               auto single = BuildSinglePlan(q, none);
               if (!single.ok()) std::abort();
             },
             20.0, 2000, 3) *
         1e6;
}

double ColdServeNs(Database& db, const ConjunctiveQuery& q, bool fast_path) {
  return TimeMs([&] {
           QueryEngine engine =
               QueryEngine::Borrow(db, RouteOptions(fast_path));
           if (!engine.Run(q).ok()) std::abort();
         }) *
         1e6;
}

}  // namespace

int main() {
  StringPool pool;
  const size_t rows = static_cast<size_t>(64 * BenchScale());

  // -- Bit-identity + exactness gates across the workload -----------------
  for (int k : {4, 8, 12}) {
    auto q = ParseQuery(ChainOfContainmentQuery(k), &pool);
    if (!q.ok()) std::abort();
    Database db = ChainDatabase(k, rows, 1000 + k);
    QueryEngine fast = QueryEngine::Borrow(db, RouteOptions(true));
    QueryEngine legacy = QueryEngine::Borrow(db, RouteOptions(false));
    auto a = fast.Run(*q);
    auto b = legacy.Run(*q);
    if (!a.ok() || !b.ok()) {
      std::printf("FAIL: k=%d run failed\n", k);
      return 1;
    }
    if (!a->exact || a->num_minimal_plans != 1) {
      std::printf("FAIL: k=%d not routed to an exact safe plan\n", k);
      return 1;
    }
    if (a->answers.size() != b->answers.size()) {
      std::printf("FAIL: k=%d answer count diverges across routes\n", k);
      return 1;
    }
    for (size_t i = 0; i < a->answers.size(); ++i) {
      if (!(a->answers[i].tuple == b->answers[i].tuple) ||
          a->answers[i].score != b->answers[i].score) {
        std::printf("FAIL: k=%d rankings diverge across routes\n", k);
        return 1;
      }
    }
  }
  std::printf("bit-identity: safe-routed == forced-dissociation rankings "
              "(k=4,8,12), exact=true, 1 minimal plan\n\n");

  // -- Compile cost: lifted linear walk vs Gosper + lattice ---------------
  PrintHeader({"k", "safe ns", "dissoc ns", "speedup"});
  double safe12 = 0, dissoc12 = 0;
  for (int k : {4, 8, 12}) {
    auto q = ParseQuery(ChainOfContainmentQuery(k), &pool);
    if (!q.ok()) std::abort();
    const double safe_ns = LiftedCompileNs(*q);
    const double dissoc_ns = LegacyCompileNs(*q);
    if (k == 12) {
      safe12 = safe_ns;
      dissoc12 = dissoc_ns;
    }
    BenchJsonRecord("compile_safe_k" + std::to_string(k), rows, safe_ns);
    BenchJsonRecord("compile_dissoc_k" + std::to_string(k), rows, dissoc_ns);
    PrintRow({std::to_string(k), Fmt(safe_ns), Fmt(dissoc_ns),
              Fmt(dissoc_ns / safe_ns)});
  }
  BenchJsonRecord("compile_speedup_k12", rows, dissoc12 / safe12);

  // -- End-to-end: cold Prepare+Execute at k=12 ---------------------------
  auto q12 = ParseQuery(ChainOfContainmentQuery(12), &pool);
  if (!q12.ok()) std::abort();
  Database db12 = ChainDatabase(12, rows, 2012);
  const double serve_safe = ColdServeNs(db12, *q12, true);
  const double serve_dissoc = ColdServeNs(db12, *q12, false);
  BenchJsonRecord("serve_safe_k12", rows, serve_safe);
  BenchJsonRecord("serve_dissoc_k12", rows, serve_dissoc);
  std::printf("\nend-to-end k=12 cold query: safe-routed %s, "
              "forced-dissociation %s (%.1fx)\n",
              FmtMs(serve_safe / 1e6).c_str(),
              FmtMs(serve_dissoc / 1e6).c_str(), serve_dissoc / serve_safe);

  // The acceptance gate: exact routing must be a strict latency win on the
  // hierarchical workload, not just a semantics win.
  if (serve_safe >= serve_dissoc) {
    std::printf("FAIL: safe-routed latency (%.0f ns) not below "
                "forced-dissociation (%.0f ns)\n",
                serve_safe, serve_dissoc);
    return 1;
  }

  // -- Unsafe residue: routing must not tax dissociated queries ----------
  {
    auto chain3 = ParseQuery("q() :- A(x), B(x,y), C(y)", &pool);
    if (!chain3.ok()) std::abort();
    SchemaKnowledge none = SchemaKnowledge::None(*chain3);
    // Routed: lifted compile (hits the residue) + the enumeration the
    // engine still runs for the plan count. Legacy: enumeration + the
    // duplicate BuildSinglePlan.
    const double residue_ns =
        TimeMs(
            [&] {
              auto r = lift::CompileSafePlan(*chain3, none);
              if (!r.ok() || r->exact) std::abort();
              auto plans = EnumerateMinimalPlans(*chain3, none);
              if (!plans.ok()) std::abort();
            },
            20.0, 2000, 3) *
        1e6;
    const double legacy_ns =
        TimeMs(
            [&] {
              auto plans = EnumerateMinimalPlans(*chain3, none);
              if (!plans.ok()) std::abort();
              auto single = BuildSinglePlan(*chain3, none);
              if (!single.ok()) std::abort();
            },
            20.0, 2000, 3) *
        1e6;
    BenchJsonRecord("unsafe_residue_prepare", rows, residue_ns);
    std::printf("unsafe 3-chain cold compile: routed %.0f ns, "
                "legacy %.0f ns\n",
                residue_ns, legacy_ns);
  }

  BenchJsonWrite("micro_safe");
  std::printf("\nOK\n");
  return 0;
}
