// Anytime-answers benchmark: the escalation ladder of RunWithGuarantees on
// the controlled-fanout 3-chain (an unsafe query whose every answer needs
// lineage work for an exact probability).
//
// Three service levels at 100k and 1M base-table rows:
//   - bounds_only        dissociation upper + oblivious lower bounds, no
//                        refinement (GuaranteeSpec with no targets)
//   - certified_top10    refine only answers contesting the top-10 rank
//                        boundary until the prefix order is certified
//   - full_exact         ground every answer's lineage and run exact WMC
//                        (the pre-anytime way to get certified answers)
//
// Measurements (BENCH_micro_anytime.json, ns per base-table row):
//   - bounds_only_{100k,1m}
//   - certified_top10_{100k,1m}
//   - full_exact_{100k,1m}
//   - refined_fraction_{100k,1m}   refined answers / total (not a time —
//                                  skipped by compare_bench)
//
// Unconditional acceptance gates (exit 1 on violation):
//   - bounds_only is no slower than full_exact at every size,
//   - certified top-10 refines strictly fewer answers than the result
//     holds (the contested-only counter-assert from the anytime design),
//   - every interval brackets the exact probability,
//   - the certified prefix agrees with the exact top-10 order.
//
//   $ ./micro_anytime
//   $ DISSODB_BENCH_SCALE=5 ./micro_anytime
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"

using namespace dissodb;         // NOLINT: bench brevity
using namespace dissodb::bench;  // NOLINT

namespace {

struct SizePoint {
  const char* label;
  size_t target_rows;
};

std::map<std::vector<Value>, double> ToMap(
    const std::vector<RankedAnswer>& answers) {
  std::map<std::vector<Value>, double> m;
  for (const auto& a : answers) m[a.tuple] = a.score;
  return m;
}

}  // namespace

int main() {
  const SizePoint sizes[] = {{"100k", 100'000}, {"1m", 1'000'000}};
  bool ok = true;

  PrintHeader({"rows", "bounds ms", "top10 ms", "exact ms", "refined",
               "answers"});

  for (const SizePoint& size : sizes) {
    const auto target =
        static_cast<size_t>(static_cast<double>(size.target_rows) *
                            BenchScale());
    // B(x,y) is the bulk table: rows ~= answers * suppliers * fanout.
    FanoutSpec fspec;
    fspec.suppliers_per_answer = 5;
    fspec.fanout = 20;
    fspec.num_answers = static_cast<int>(
        target / (fspec.suppliers_per_answer * fspec.fanout));
    fspec.y_domain = 4000;
    fspec.pi_max = 0.2;  // the regime where dissociation bounds are tight
    fspec.seed = 11;
    Database db = MakeFanoutDatabase(fspec);
    ConjunctiveQuery q = Q3Chain();
    size_t rows = 0;
    for (int t = 0; t < db.NumTables(); ++t) rows += db.table(t).NumRows();

    QueryEngine engine = QueryEngine::Borrow(db);
    auto prepared = engine.Prepare(q);
    if (!prepared.ok() || prepared->exact()) {
      std::printf("unexpected prepare state\n");
      return 1;
    }

    // Ground truth once, for both the gate checks and the exact timing.
    auto exact = ExactProbabilities(db, q);
    if (!exact.ok()) {
      std::printf("exact ground truth failed: %s\n",
                  exact.status().ToString().c_str());
      return 1;
    }
    auto exact_map = ToMap(*exact);

    const double bounds_ms = TimeMs([&] {
      auto r = engine.RunWithGuarantees(*prepared);
      if (!r.ok()) std::abort();
    });

    GuaranteeSpec top10;
    top10.top_k = 10;
    top10.max_refined_per_round = 8;
    const double top10_ms = TimeMs([&] {
      auto r = engine.RunWithGuarantees(*prepared, {}, top10);
      if (!r.ok()) std::abort();
    });

    const double exact_ms = TimeMs([&] {
      auto r = ExactProbabilities(db, q);
      if (!r.ok()) std::abort();
    });

    // ---- Gates on one representative run of each level.
    auto bounds = engine.RunWithGuarantees(*prepared);
    auto certified = engine.RunWithGuarantees(*prepared, {}, top10);
    if (!bounds.ok() || !certified.ok()) {
      std::printf("anytime run failed\n");
      return 1;
    }
    for (const auto& a : bounds->answers) {
      auto it = exact_map.find(a.tuple);
      if (it == exact_map.end() || a.lower > it->second + 1e-9 ||
          a.upper < it->second - 1e-9) {
        std::printf("GATE FAILED: bounds do not bracket exact probability\n");
        ok = false;
        break;
      }
    }
    if (certified->verdict != AnytimeVerdict::kCertified) {
      std::printf("GATE FAILED: top-10 run did not certify\n");
      ok = false;
    }
    if (certified->refined_answers >= certified->answers.size()) {
      std::printf("GATE FAILED: refinement touched every answer "
                  "(%zu of %zu)\n",
                  certified->refined_answers, certified->answers.size());
      ok = false;
    }
    // Certified prefix must match the exact top-10 (ties tolerated).
    for (size_t i = 0; i < certified->certified_prefix; ++i) {
      const double pi = exact_map.at(certified->answers[i].tuple);
      for (size_t j = i + 1; j < certified->answers.size(); ++j) {
        if (pi < exact_map.at(certified->answers[j].tuple) - 1e-9) {
          std::printf("GATE FAILED: certified position %zu not dominant\n",
                      i);
          ok = false;
          break;
        }
      }
    }
    if (bounds_ms > exact_ms) {
      std::printf("GATE FAILED: bounds-only (%.2f ms) slower than "
                  "full-exact (%.2f ms)\n",
                  bounds_ms, exact_ms);
      ok = false;
    }

    const double refined_fraction =
        certified->answers.empty()
            ? 0.0
            : static_cast<double>(certified->refined_answers) /
                  static_cast<double>(certified->answers.size());
    PrintRow({size.label, FmtMs(bounds_ms), FmtMs(top10_ms),
              FmtMs(exact_ms),
              std::to_string(certified->refined_answers) + "/" +
                  std::to_string(certified->answers.size()),
              std::to_string(certified->answers.size())});

    const double per_row = 1e6 / static_cast<double>(rows);
    BenchJsonRecord(std::string("bounds_only_") + size.label, rows,
                    bounds_ms * per_row);
    BenchJsonRecord(std::string("certified_top10_") + size.label, rows,
                    top10_ms * per_row);
    BenchJsonRecord(std::string("full_exact_") + size.label, rows,
                    exact_ms * per_row);
    BenchJsonRecord(std::string("refined_fraction_") + size.label, rows,
                    refined_fraction);
  }

  BenchJsonWrite("micro_anytime");
  if (!ok) return 1;
  std::printf("\nall anytime gates passed\n");
  return 0;
}
