// Figure 5i: ranking quality (MAP@10) of Monte Carlo as a function of the
// number of samples, against the dissociation and lineage-size reference
// lines.
//
// Paper shape: MC climbs from ~0.47 (10 samples) towards ~0.96 (10k
// samples); dissociation sits at ~0.998 — above MC even at 10k samples —
// and ranking by lineage size is far below (~0.52).
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace dissodb;        // NOLINT
using namespace dissodb::bench; // NOLINT

int main() {
  std::printf("Figure 5i: MAP@10 vs number of MC samples "
              "($2='%%red%%green%%')\n\n");
  TpchOptions opts;
  opts.scale = 0.05 * BenchScale();
  ConjunctiveQuery q = TpchQuery();

  const std::vector<size_t> sample_counts = {10, 30, 100, 300, 1000, 3000};
  std::vector<MeanStd> mc_ap(sample_counts.size());
  MeanStd diss_ap, lin_ap;

  int runs = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    TpchOptions o = opts;
    o.seed = seed;
    o.pi_max = 0.5;
    Database db = MakeTpchDatabase(o);
    int64_t suppliers =
        static_cast<int64_t>((*db.GetTable("Supplier"))->NumRows());
    auto sel = MakeTpchSelections(db, suppliers * 4 / 5, "%red%green%");
    auto lineage = ComputeLineage(db, q, (*sel)->overrides);
    if (!lineage.ok()) continue;
    auto exact = ExactFromLineage(*lineage);
    if (!exact.ok()) continue;

    // The paper restricts MC's comparison to the regime where the top-10
    // answer probabilities are not saturated (0.1 < avg[pa] < 0.9).
    double avg_pa = 0;
    size_t top = std::min<size_t>(10, exact->size());
    for (size_t i = 0; i < top; ++i) avg_pa += (*exact)[i].score;
    avg_pa /= top ? top : 1;
    if (avg_pa < 0.05 || avg_pa > 0.95) continue;
    ++runs;

    auto diss = PropagationScore(db, q, {}, (*sel)->overrides);
    diss_ap.Add(ApAgainst(*exact, diss->answers));
    lin_ap.Add(ApAgainst(*exact, LineageSizeRanking(*lineage)));
    for (size_t si = 0; si < sample_counts.size(); ++si) {
      for (int rep = 0; rep < 3; ++rep) {
        Rng rng(seed * 1000 + si * 10 + rep);
        auto mc = McFromLineage(*lineage, sample_counts[si], &rng);
        mc_ap[si].Add(ApAgainst(*exact, mc));
      }
    }
  }

  PrintHeader({"method", "MAP@10", "stddev"});
  for (size_t si = 0; si < sample_counts.size(); ++si) {
    PrintRow({"MC(" + std::to_string(sample_counts[si]) + ")",
              Fmt(mc_ap[si].mean()), Fmt(mc_ap[si].stddev())});
  }
  PrintRow({"Dissociation", Fmt(diss_ap.mean()), Fmt(diss_ap.stddev())});
  PrintRow({"LineageSize", Fmt(lin_ap.mean()), Fmt(lin_ap.stddev())});
  std::printf("\n(%d runs; paper: MC(10)=0.472 ... MC(10k)=0.964, "
              "Diss=0.998, lineage=0.515)\n", runs);
  return 0;
}
