// Prepared-query benchmark: plan-handle amortization and canonicalized
// sharing.
//
// Three measurements over one shared chain database:
//   1. prepare-once-execute-many: N executions of one PreparedQuery handle
//      vs N full Run(text) calls (parse + canonicalize + plan-cache lookup
//      every time).
//   2. isomorphic batch: 64 pairwise variable-renamed chain queries through
//      RunBatch with canonicalization (handles collapse to one plan-cache
//      entry and shared ResultCache fingerprints) vs the legacy
//      un-canonicalized engine (the PR 3 baseline behavior, where renamed
//      queries share almost nothing).
//   3. opt3 batch: the same workload with semi-join reduction enabled —
//      reductions are fingerprinted and cached, so (unlike PR 3, where
//      opt3 disabled all sharing) the batch still gets result-cache hits.
//
//   $ ./micro_prepared
//   $ DISSODB_BENCH_SCALE=5 ./micro_prepared
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <thread>

#include "bench/bench_common.h"

using namespace dissodb;         // NOLINT: bench brevity
using namespace dissodb::bench;  // NOLINT

namespace {

ConjunctiveQuery PermuteVars(const ConjunctiveQuery& q,
                             const std::vector<int>& order,
                             const std::string& prefix) {
  ConjunctiveQuery out;
  out.SetName(q.name());
  std::vector<VarId> newid(q.num_vars(), -1);
  for (int old : order) newid[old] = out.AddVar(prefix + q.var_name(old));
  for (VarId h : q.head_vars()) (void)out.AddHeadVar(newid[h]);
  for (int i = 0; i < q.num_atoms(); ++i) {
    Atom atom = q.atom(i);
    for (Term& t : atom.terms) {
      if (t.is_var) t.var = newid[t.var];
    }
    (void)out.AddAtom(std::move(atom));
  }
  return out;
}

std::vector<int> RandomOrder(Rng* rng, int n) {
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (int i = n - 1; i > 0; --i) {
    int j = static_cast<int>(rng->NextBounded(i + 1));
    std::swap(order[i], order[j]);
  }
  return order;
}

EngineOptions BatchOptions(bool canonicalize) {
  const unsigned hw = std::thread::hardware_concurrency();
  EngineOptions opts;
  opts.canonicalize = canonicalize;
  opts.num_threads = static_cast<int>(std::min(hw ? hw : 1u, 8u));
  return opts;
}

}  // namespace

int main() {
  constexpr int kBatchSize = 64;
  ChainSpec spec;
  spec.k = 4;
  spec.n = static_cast<size_t>(8000 * BenchScale());
  spec.seed = 3;
  Database db = MakeChainDatabase(spec);
  ConjunctiveQuery base = MakeChainQuery(4);

  std::printf("micro_prepared: chain-4 database with n=%zu rows/relation\n\n",
              spec.n);

  // -------------------------------------------------------------------------
  // 1. prepare-once-execute-many. The point-lookup workload (a small
  // database) isolates the per-call overhead a prepared handle amortizes
  // away (parse + canonicalize + plan-cache lookup); the large workload
  // shows the overhead disappearing into evaluation time.
  // -------------------------------------------------------------------------
  ChainSpec small_spec = spec;
  small_spec.n = 64;
  Database small_db = MakeChainDatabase(small_spec);

  const std::string text = base.ToString();
  auto time_pair = [&](Database* target, int execs, double* run_ms,
                       double* exec_ms) -> bool {
    *run_ms = 1e300;
    *exec_ms = 1e300;
    size_t checksum_run = 0, checksum_exec = 0;
    for (int rep = 0; rep < 3; ++rep) {
      QueryEngine engine = QueryEngine::Borrow(*target);
      (void)engine.Run(text);  // warm the plan cache: both paths compile once
      Timer t;
      checksum_run = 0;
      for (int i = 0; i < execs; ++i) {
        auto r = engine.Run(text);
        if (r.ok()) checksum_run += r->answers.size();
      }
      *run_ms = std::min(*run_ms, t.ElapsedMillis());
    }
    for (int rep = 0; rep < 3; ++rep) {
      QueryEngine engine = QueryEngine::Borrow(*target);
      auto prepared = engine.Prepare(text);
      if (!prepared.ok()) {
        std::printf("Prepare failed: %s\n",
                    prepared.status().ToString().c_str());
        return false;
      }
      Timer t;
      checksum_exec = 0;
      for (int i = 0; i < execs; ++i) {
        auto r = engine.Execute(*prepared);
        if (r.ok()) checksum_exec += r->answers.size();
      }
      *exec_ms = std::min(*exec_ms, t.ElapsedMillis());
    }
    if (checksum_run != checksum_exec) {
      std::printf("answer mismatch: Run %zu vs Execute %zu\n", checksum_run,
                  checksum_exec);
      return false;
    }
    return true;
  };

  constexpr int kExecs = 200;
  constexpr int kSmallExecs = 2000;
  double run_ms, exec_ms, small_run_ms, small_exec_ms;
  if (!time_pair(&db, kExecs, &run_ms, &exec_ms)) return 1;
  if (!time_pair(&small_db, kSmallExecs, &small_run_ms, &small_exec_ms)) {
    return 1;
  }
  const double amortization = small_run_ms / small_exec_ms;
  PrintHeader({"path", "wall_ms", "per_query", "speedup"});
  PrintRow({"small Run(text)", FmtMs(small_run_ms),
            FmtMs(small_run_ms / kSmallExecs), "1.00"});
  PrintRow({"small Execute(prep)", FmtMs(small_exec_ms),
            FmtMs(small_exec_ms / kSmallExecs), Fmt(amortization)});
  PrintRow({"large Run(text)", FmtMs(run_ms), FmtMs(run_ms / kExecs), "1.00"});
  PrintRow({"large Execute(prep)", FmtMs(exec_ms), FmtMs(exec_ms / kExecs),
            Fmt(run_ms / exec_ms)});

  // -------------------------------------------------------------------------
  // 2. isomorphic batch: canonicalized vs legacy (PR 3 baseline behavior)
  // -------------------------------------------------------------------------
  Rng rng(33);
  std::vector<ConjunctiveQuery> workload;
  workload.reserve(kBatchSize);
  for (int i = 0; i < kBatchSize; ++i) {
    workload.push_back(PermuteVars(base, RandomOrder(&rng, base.num_vars()),
                                   "n" + std::to_string(i) + "_"));
  }

  auto run_batch = [&](bool canonicalize, bool opt3, double* best_ms,
                       EngineStats* best_stats) -> bool {
    *best_ms = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      EngineOptions opts = BatchOptions(canonicalize);
      opts.propagation.opt3_semijoin_reduction = opt3;
      QueryEngine engine = QueryEngine::Borrow(db, opts);
      Timer t;
      auto results = engine.RunBatch(workload);
      double ms = t.ElapsedMillis();
      if (!results.ok()) {
        std::printf("RunBatch failed: %s\n",
                    results.status().ToString().c_str());
        return false;
      }
      if (ms < *best_ms) {
        *best_ms = ms;
        *best_stats = engine.stats();
      }
    }
    return true;
  };

  double canon_ms, legacy_ms, opt3_ms;
  EngineStats canon_stats, legacy_stats, opt3_stats;
  if (!run_batch(true, false, &canon_ms, &canon_stats)) return 1;
  if (!run_batch(false, false, &legacy_ms, &legacy_stats)) return 1;
  if (!run_batch(true, true, &opt3_ms, &opt3_stats)) return 1;

  auto served = [](const EngineStats& s) {
    return s.result_cache_hits + s.result_cache_in_flight_waits;
  };
  std::printf("\n64 pairwise variable-renamed chain-4 queries (RunBatch):\n");
  PrintHeader({"engine", "wall_ms", "rc_served", "plan_miss"});
  PrintRow({"canonical", FmtMs(canon_ms), std::to_string(served(canon_stats)),
            std::to_string(canon_stats.plan_cache_misses)});
  PrintRow({"legacy(PR3)", FmtMs(legacy_ms),
            std::to_string(served(legacy_stats)),
            std::to_string(legacy_stats.plan_cache_misses)});
  PrintRow({"canonical+opt3", FmtMs(opt3_ms),
            std::to_string(served(opt3_stats)),
            std::to_string(opt3_stats.plan_cache_misses)});
  std::printf("canonical remap plan-cache hits: %zu; opt3 reductions: "
              "%zu cached / %zu computed\n",
              canon_stats.canonical_remap_hits, opt3_stats.reduction_cache_hits,
              opt3_stats.reduction_cache_misses);

  BenchJsonRecord("run_text", kExecs, run_ms * 1e6 / kExecs);
  BenchJsonRecord("execute_prepared", kExecs, exec_ms * 1e6 / kExecs);
  BenchJsonRecord("small_run_text", kSmallExecs,
                  small_run_ms * 1e6 / kSmallExecs);
  BenchJsonRecord("small_execute_prepared", kSmallExecs,
                  small_exec_ms * 1e6 / kSmallExecs);
  BenchJsonRecord("isomorphic_batch_canonical", kBatchSize,
                  canon_ms * 1e6 / kBatchSize);
  BenchJsonRecord("isomorphic_batch_legacy", kBatchSize,
                  legacy_ms * 1e6 / kBatchSize);
  BenchJsonRecord("opt3_batch", kBatchSize, opt3_ms * 1e6 / kBatchSize);
  // Non-time records (compare_bench skips by name): sharing counters.
  BenchJsonRecord("prepared_amortization_speedup", kExecs, amortization);
  BenchJsonRecord("isomorphic_rc_served", served(canon_stats),
                  static_cast<double>(served(canon_stats)));
  BenchJsonRecord("opt3_rc_served", served(opt3_stats),
                  static_cast<double>(served(opt3_stats)));
  BenchJsonWrite("micro_prepared");

  // Acceptance gates (unconditional: these are correctness-of-sharing, not
  // machine-speed, properties).
  if (served(canon_stats) == 0) {
    std::printf("FAIL: canonicalized isomorphic batch shared nothing\n");
    return 1;
  }
  if (served(canon_stats) < 2 * served(legacy_stats)) {
    std::printf("FAIL: canonicalization did not restore sharing "
                "(canonical %zu vs legacy %zu)\n",
                served(canon_stats), served(legacy_stats));
    return 1;
  }
  if (served(opt3_stats) == 0) {
    std::printf("FAIL: opt3 batch shared nothing (reduction taint back?)\n");
    return 1;
  }
  if (canon_stats.plan_cache_misses != 1) {
    std::printf("FAIL: 64 isomorphic queries should compile exactly once, "
                "got %zu compiles\n", canon_stats.plan_cache_misses);
    return 1;
  }
  // Optional speed gate for CI: prepared executions must amortize the
  // per-call parse+canonicalize+lookup overhead away.
  if (const char* req = std::getenv("DISSODB_REQUIRE_PREPARED_SPEEDUP")) {
    const double required = std::atof(req);
    if (required > 0 && amortization < required) {
      std::printf("FAIL: prepare-once amortization %.2fx below required "
                  "%.2fx\n", amortization, required);
      return 1;
    }
  }
  return 0;
}
