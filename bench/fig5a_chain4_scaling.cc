// Figure 5a: 4-chain query runtime vs database size.
//
// Paper shape: all methods grow linearly with n; "all plans" (5 minimal
// plans evaluated separately) is the slowest; Opt1/Opt1-2 close the gap;
// Opt1-3 approaches deterministic SQL for larger n.
#include <cstdio>

#include "bench/bench_common.h"

using namespace dissodb;        // NOLINT
using namespace dissodb::bench; // NOLINT

int main() {
  std::printf("Figure 5a: 4-chain query, runtime vs tuples per table\n\n");
  PrintHeader({"n", "#plans", "AllPlans", "Opt1", "Opt1-2", "Opt1-3", "SQL"});
  double scale = BenchScale();
  for (size_t n : {size_t{100}, size_t{1000}, size_t{10000}, size_t{50000}}) {
    size_t nn = static_cast<size_t>(n * scale);
    ChainSpec spec;
    spec.k = 4;
    spec.n = nn;
    spec.seed = 4040 + nn;
    Database db = MakeChainDatabase(spec);
    ConjunctiveQuery q = MakeChainQuery(4);
    MethodTiming t = TimeAllMethods(db, q);
    PrintRow({std::to_string(nn), std::to_string(t.num_plans),
              FmtMs(t.all_plans_ms), FmtMs(t.opt1_ms), FmtMs(t.opt12_ms),
              FmtMs(t.opt123_ms), FmtMs(t.standard_sql_ms)});
  }
  return 0;
}
