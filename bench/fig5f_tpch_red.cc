// Figure 5f: TPC-H query runtime vs $1, with $2 = '%red%'.
//
// Paper shape: medium lineages — exact inference starts to fall behind;
// the semi-join reduction's advantage shrinks (more tuples participate).
#include <cstdio>

#include "bench/bench_common.h"

using namespace dissodb;        // NOLINT
using namespace dissodb::bench; // NOLINT

int main() {
  std::printf("Figure 5f: TPC-H runtime, $2 = '%%red%%'\n\n");
  TpchOptions opts;
  opts.scale = 0.1 * BenchScale();
  Database db = MakeTpchDatabase(opts);
  ConjunctiveQuery q = TpchQuery();
  int64_t suppliers = static_cast<int64_t>((*db.GetTable("Supplier"))->NumRows());
  std::printf("scale %.3f: %lld suppliers\n\n", opts.scale,
              static_cast<long long>(suppliers));
  PrintHeader({"$1", "maxlin", "Diss", "Diss+Opt3", "Exact", "MC(1k)",
               "Lineage", "SQL"});
  for (double frac : {0.1, 0.25, 0.5, 1.0}) {
    int64_t dollar1 = static_cast<int64_t>(suppliers * frac);
    TpchRun r = RunTpchMethods(db, q, dollar1, "%red%");
    PrintRow({std::to_string(dollar1), std::to_string(r.max_lineage),
              FmtMs(r.diss_ms), FmtMs(r.diss_opt3_ms), FmtMs(r.exact_ms),
              FmtMs(r.mc1k_ms), FmtMs(r.lineage_ms), FmtMs(r.sql_ms)});
  }
  return 0;
}
