// Batch serving benchmark: 64 overlapping chain queries through
// QueryEngine::RunBatch versus a loop of single Run calls.
//
// The workload cycles chain queries of length 2..7 over one shared chain-7
// database, so the batch contains many repeated shapes — the serving
// layer's result cache computes each distinct subplan once and the thread
// pool runs the residual work concurrently. Reports wall-clock speedup and
// the result-cache hit rate, in the standard BENCH_*.json format.
//
//   $ ./micro_batch                     # default sizes
//   $ DISSODB_BENCH_SCALE=5 ./micro_batch
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench/bench_common.h"

using namespace dissodb;         // NOLINT: bench brevity
using namespace dissodb::bench;  // NOLINT

int main() {
  constexpr int kBatchSize = 64;
  ChainSpec spec;
  spec.k = 7;
  spec.n = static_cast<size_t>(8000 * BenchScale());
  spec.seed = 3;
  Database db = MakeChainDatabase(spec);

  std::vector<ConjunctiveQuery> workload;
  workload.reserve(kBatchSize);
  for (int i = 0; i < kBatchSize; ++i) {
    workload.push_back(MakeChainQuery(2 + (i % 6)));
  }

  std::printf("micro_batch: %d chain queries (k=2..7, ~%d repeats each) "
              "over a chain-7 database with n=%zu rows/relation\n\n",
              kBatchSize, kBatchSize / 6, spec.n);

  // Sequential baseline: one engine, single Run calls. The plan cache is
  // active (both paths compile each shape once); the result cache is not —
  // Run measures evaluation, which is exactly the pre-serving behavior.
  double seq_ms = 1e300;
  size_t seq_answers = 0;
  for (int rep = 0; rep < 3; ++rep) {
    QueryEngine engine = QueryEngine::Borrow(db);
    Timer t;
    for (const auto& q : workload) {
      auto r = engine.Run(q);
      if (r.ok()) seq_answers += r->answers.size();
    }
    seq_ms = std::min(seq_ms, t.ElapsedMillis());
  }

  // Batch path: fresh engine per rep so the first RunBatch's hit rate is
  // the honest cold-cache number. Concurrent duplicates cannot compute
  // twice — the cache's in-flight dedup hands one requester the lead and
  // parks the rest on its future — but the pool stays capped at 8 threads
  // so the measured speedup is comparable across machines.
  double batch_ms = 1e300;
  EngineStats batch_stats;
  size_t batch_answers = 0;
  const unsigned hw = std::thread::hardware_concurrency();
  EngineOptions batch_opts;
  batch_opts.num_threads = static_cast<int>(std::min(hw ? hw : 1u, 8u));
  for (int rep = 0; rep < 3; ++rep) {
    QueryEngine engine = QueryEngine::Borrow(db, batch_opts);
    Timer t;
    auto results = engine.RunBatch(workload);
    double ms = t.ElapsedMillis();
    if (!results.ok()) {
      std::printf("RunBatch failed: %s\n",
                  results.status().ToString().c_str());
      return 1;
    }
    batch_answers = 0;
    for (const auto& r : *results) batch_answers += r.answers.size();
    if (ms < batch_ms) {
      batch_ms = ms;
      batch_stats = engine.stats();
    }
  }

  if (batch_answers * 3 != seq_answers) {
    std::printf("answer mismatch: batch %zu vs sequential %zu (x3)\n",
                batch_answers, seq_answers / 3);
    return 1;
  }

  const double speedup = seq_ms / batch_ms;
  // A lookup is served without computing either by a plain hit or by
  // waiting on a concurrent in-flight computation of the same subplan.
  const size_t served = batch_stats.result_cache_hits +
                        batch_stats.result_cache_in_flight_waits;
  const size_t lookups = served + batch_stats.result_cache_misses;
  const double hit_rate =
      lookups > 0 ? static_cast<double>(served) / lookups : 0.0;

  PrintHeader({"path", "wall_ms", "per_query", "speedup"});
  PrintRow({"sequential", FmtMs(seq_ms), FmtMs(seq_ms / kBatchSize), "1.00"});
  PrintRow({"RunBatch", FmtMs(batch_ms), FmtMs(batch_ms / kBatchSize),
            Fmt(speedup)});
  std::printf("\nresult cache: %zu served (%zu hits + %zu in-flight waits) "
              "/ %zu lookups (%.1f%%), %zu entries, %zu evictions\n",
              served, batch_stats.result_cache_hits,
              batch_stats.result_cache_in_flight_waits, lookups,
              100.0 * hit_rate, batch_stats.result_cache_entries,
              batch_stats.result_cache_evictions);
  std::printf("scheduler: %zu tasks executed; plan cache: %zu hits / %zu "
              "misses\n",
              batch_stats.tasks_executed, batch_stats.plan_cache_hits,
              batch_stats.plan_cache_misses);

  BenchJsonRecord("sequential_64", kBatchSize,
                  seq_ms * 1e6 / kBatchSize);
  BenchJsonRecord("batch_64", kBatchSize, batch_ms * 1e6 / kBatchSize);
  // Same JSON shape, different units: `ns_per_row` carries the ratio for
  // `batch_speedup` and the hit fraction for `result_cache_hit_rate`
  // (rows = absolute hit count). compare_bench.py skips these by name.
  BenchJsonRecord("batch_speedup", kBatchSize, speedup);
  BenchJsonRecord("result_cache_hit_rate", served, hit_rate);
  BenchJsonWrite("micro_batch");

  if (served == 0) {
    std::printf("FAIL: expected result-cache sharing in the overlapping "
                "workload\n");
    return 1;
  }
  // CI acceptance gate (opt-in so loaded dev machines don't fail runs):
  // DISSODB_REQUIRE_SPEEDUP=2 demands RunBatch beat the sequential loop 2x.
  if (const char* req = std::getenv("DISSODB_REQUIRE_SPEEDUP")) {
    const double required = std::atof(req);
    if (required > 0 && speedup < required) {
      std::printf("FAIL: speedup %.2fx below required %.2fx\n", speedup,
                  required);
      return 1;
    }
  }

  // Trace export (CI smoke): DISSODB_TRACE_EXPORT=<path> re-runs the batch
  // with every execution traced (trace_sample_every = 1) and writes one
  // execution's Chrome trace-event JSON to <path> — Perfetto-loadable, and
  // schema-checked by bench/check_trace.py.
  if (const char* path = std::getenv("DISSODB_TRACE_EXPORT")) {
    EngineOptions traced_opts = batch_opts;
    traced_opts.trace_sample_every = 1;
    QueryEngine engine = QueryEngine::Borrow(db, traced_opts);
    auto results = engine.RunBatch(workload);
    if (!results.ok() || results->empty() ||
        (*results)[0].trace == nullptr) {
      std::printf("FAIL: traced batch produced no trace\n");
      return 1;
    }
    if (engine.stats().traces_recorded != workload.size()) {
      std::printf("FAIL: sampling=1 must trace every execution (%zu/%zu)\n",
                  engine.stats().traces_recorded, workload.size());
      return 1;
    }
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::printf("FAIL: cannot open %s\n", path);
      return 1;
    }
    const std::string json = (*results)[0].trace->ToChromeJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("trace export: %zu traced executions, wrote %zu bytes of "
                "Chrome trace JSON to %s\n",
                engine.stats().traces_recorded, json.size(), path);
    std::printf("span tree of the exported execution:\n%s",
                (*results)[0].trace->ToText().c_str());
  }
  return 0;
}
