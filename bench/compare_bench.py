#!/usr/bin/env python3
"""Compare two BENCH_*.json files and fail on ns/row regressions.

The bench binaries write machine-readable results as
    {"bench": "<name>", "results": [{"op": ..., "rows": N, "ns_per_row": X}]}
and the repo commits the previous run under bench/baselines/. CI reruns the
bench and calls this script to diff the trajectories:

    python3 bench/compare_bench.py bench/baselines/BENCH_micro_operators.json \
        build/BENCH_micro_operators.json --threshold 0.25

Exit code 1 iff some (op, rows) pair got more than `threshold` slower.
Entries only present on one side are reported but never fail the check
(benches gain and retire ops across PRs). Ops whose `ns_per_row` field is
not a time (micro_batch's `batch_speedup` / `result_cache_hit_rate`) are
skipped via --skip. Use --update to overwrite the baseline with the
current run after an intentional change.
"""

import argparse
import json
import shutil
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    table = {}
    for r in doc.get("results", []):
        table[(r["op"], r["rows"])] = r["ns_per_row"]
    return doc.get("bench", "?"), table


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="max allowed slowdown fraction (default 0.25)")
    ap.add_argument("--min-ns", type=float, default=0.5,
                    help="ignore entries faster than this in the baseline "
                         "(sub-ns timings are noise)")
    ap.add_argument("--skip", default="batch_speedup,result_cache_hit_rate",
                    help="comma-separated op substrings that are not "
                         "ns/row measurements")
    ap.add_argument("--update", action="store_true",
                    help="copy current over baseline instead of comparing")
    args = ap.parse_args()

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline updated: {args.baseline} <- {args.current}")
        return 0

    base_name, base = load(args.baseline)
    cur_name, cur = load(args.current)
    skip = [s for s in args.skip.split(",") if s]

    regressions = []
    print(f"{'op':<40}{'rows':>10}{'base':>12}{'cur':>12}{'ratio':>8}")
    print("-" * 82)
    for key in sorted(base.keys() | cur.keys()):
        op, rows = key
        if any(s in op for s in skip):
            continue
        b = base.get(key)
        c = cur.get(key)
        if b is None:
            print(f"{op:<40}{rows:>10}{'--':>12}{c:>12.2f}{'new':>8}")
            continue
        if c is None:
            print(f"{op:<40}{rows:>10}{b:>12.2f}{'--':>12}{'gone':>8}")
            continue
        ratio = c / b if b > 0 else float("inf")
        flag = ""
        if b >= args.min_ns and ratio > 1.0 + args.threshold:
            regressions.append((op, rows, b, c, ratio))
            flag = "  << REGRESSION"
        print(f"{op:<40}{rows:>10}{b:>12.2f}{c:>12.2f}{ratio:>8.2f}{flag}")

    if regressions:
        print(f"\nFAIL: {len(regressions)} op(s) regressed more than "
              f"{args.threshold:.0%} vs {args.baseline}:")
        for op, rows, b, c, ratio in regressions:
            print(f"  {op} rows={rows}: {b:.2f} -> {c:.2f} ns/row "
                  f"({ratio:.2f}x)")
        print("If intentional, refresh the baseline with --update.")
        return 1
    print(f"\nOK: no >{args.threshold:.0%} regressions "
          f"({base_name} vs {cur_name}).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
