// Figure 5m: the regime map — where dissociation beats MC(x) in the
// (avg[d], avg[pi]) plane.
//
// Paper shape: MC wins only in a small region with both many dissociations
// per tuple AND large input probabilities; everywhere else (and always for
// small probabilities) dissociation is better — while being orders of
// magnitude faster.
#include <cstdio>

#include "bench/bench_common.h"

using namespace dissodb;        // NOLINT
using namespace dissodb::bench; // NOLINT

int main() {
  std::printf("Figure 5m: dissociation vs MC in the (avg[d], avg[pi]) "
              "plane\n\n");
  ConjunctiveQuery q = Q3Chain();
  const size_t mc_samples[] = {100, 1000, 3000};

  for (size_t samples : mc_samples) {
    std::printf("MC(%zu): cell = winner (D = dissociation, M = MC, "
                "~ = within 0.01)\n", samples);
    PrintHeader({"avg[pi] \\ d", "d~1", "d~2", "d~3", "d~4", "d~5"}, 12);
    for (double avg_pi : {0.05, 0.15, 0.25, 0.35, 0.5}) {
      std::vector<std::string> row = {StrFormat("%.2f", avg_pi)};
      for (int fanout : {1, 2, 3, 4, 5}) {
        MeanStd diss_ap, mc_ap;
        for (uint64_t seed = 1; seed <= 4; ++seed) {
          FanoutSpec spec;
          spec.fanout = fanout;
          spec.pi_max = 2 * avg_pi;
          spec.seed = seed;
          Database db = MakeFanoutDatabase(spec);
          auto lineage = ComputeLineage(db, q);
          if (!lineage.ok()) continue;
          auto exact = ExactFromLineage(*lineage);
          if (!exact.ok()) continue;
          // Per-plan ranking as in Figure 5l: the plan with avg[d]~fanout.
          auto plans = EnumerateMinimalPlans(q);
          PlanPtr plan_a;
          for (const auto& p : *plans) {
            if (ExtractDissociation(p, q).extra[0] != 0) plan_a = p;
          }
          auto scores = PlanScore(db, q, plan_a);
          diss_ap.Add(ApAgainst(*exact, *scores));
          for (int rep = 0; rep < 2; ++rep) {
            Rng rng(seed * 37 + rep);
            mc_ap.Add(ApAgainst(*exact,
                                McFromLineage(*lineage, samples, &rng)));
          }
        }
        double delta = diss_ap.mean() - mc_ap.mean();
        row.push_back(delta > 0.01 ? "D" : (delta < -0.01 ? "M" : "~"));
      }
      PrintRow(row, 12);
    }
    std::printf("\n");
  }
  std::printf("(paper: MC(1k) wins only above a frontier of large avg[d] "
              "AND large avg[pi])\n");
  return 0;
}
