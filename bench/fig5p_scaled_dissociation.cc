// Figure 5p: dissociation on scaled databases.
//
// Paper shape: as f -> 0, (i) dissociation w.r.t. the scaled ground truth
// -> 1 (Proposition 21); (ii) dissociation on the scaled database w.r.t.
// the ORIGINAL ground truth decreases towards the scaled-GT-vs-GT curve —
// i.e. the expected quality floor of dissociation is ranking by relative
// input weights, not random.
#include <cstdio>

#include "bench/bench_common.h"

using namespace dissodb;        // NOLINT
using namespace dissodb::bench; // NOLINT

int main() {
  std::printf("Figure 5p: scaled dissociation (avg[pi]=0.5, avg[d]~3)\n\n");
  ConjunctiveQuery q = Q3Chain();

  PrintHeader({"f", "SDiss~SGT", "SDiss~GT", "SGT~GT", "Lin~SGT"}, 13);
  for (double f : {1.0, 0.5, 0.2, 0.05, 0.01}) {
    MeanStd sdiss_sgt, sdiss_gt, sgt_gt, lin_sgt;
    for (uint64_t seed = 1; seed <= 7; ++seed) {
      FanoutSpec spec;
      spec.fanout = 3;
      spec.pi_max = 1.0;
      spec.seed = seed;
      Database db = MakeFanoutDatabase(spec);
      auto gt = ExactProbabilities(db, q);
      if (!gt.ok()) continue;
      Database scaled = db.Clone();
      scaled.ScaleProbabilities(f);
      auto lineage = ComputeLineage(scaled, q);
      if (!lineage.ok()) continue;
      auto sgt = ExactFromLineage(*lineage);
      if (!sgt.ok()) continue;
      auto sdiss = PropagationScore(scaled, q);
      sdiss_sgt.Add(ApAgainst(*sgt, sdiss->answers));
      sdiss_gt.Add(ApAgainst(*gt, sdiss->answers));
      sgt_gt.Add(ApAgainst(*gt, *sgt));
      lin_sgt.Add(ApAgainst(*sgt, LineageSizeRanking(*lineage)));
    }
    PrintRow({StrFormat("%.2f", f), Fmt(sdiss_sgt.mean()),
              Fmt(sdiss_gt.mean()), Fmt(sgt_gt.mean()), Fmt(lin_sgt.mean())},
             13);
  }
  std::printf("\n(paper: Scaled-Diss w.r.t. Scaled-GT -> 1 as f -> 0; "
              "Scaled-Diss w.r.t. GT -> Scaled-GT w.r.t. GT)\n");
  return 0;
}
