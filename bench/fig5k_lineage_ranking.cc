// Figure 5k: quality of ranking by lineage size, for constant vs random
// input probabilities, as lineages grow.
//
// Paper shape: with pi = const the lineage size nearly determines the
// ranking (MAP close to 1); with random probabilities (avg[pi] = const)
// lineage size is a poor proxy (MAP around 0.5-0.7), largely independent of
// the lineage magnitude.
#include <cstdio>

#include "bench/bench_common.h"

using namespace dissodb;        // NOLINT
using namespace dissodb::bench; // NOLINT

int main() {
  std::printf("Figure 5k: lineage-size ranking quality\n\n");
  ConjunctiveQuery q = TpchQuery();
  TpchOptions o;
  o.scale = 0.04 * BenchScale();
  Database base = MakeTpchDatabase(o);
  int64_t suppliers =
      static_cast<int64_t>((*base.GetTable("Supplier"))->NumRows());

  struct Config {
    const char* label;
    bool constant;
    double pi;
  };
  // pi = 0.5 saturates the answer probabilities for the larger lineages
  // (the paper filters those runs out too), so 0.3 is the upper level here.
  const Config configs[] = {
      {"pi=0.1", true, 0.1},
      {"pi=0.3", true, 0.3},
      {"avg[pi]=0.1", false, 0.2},
      {"avg[pi]=0.3", false, 0.6},
  };

  PrintHeader({"config", "maxlin", "MAP(lineage)", "MAP(diss)"}, 14);
  for (const auto& cfg : configs) {
    for (double frac : {0.3, 1.0}) {
      MeanStd lin_ap, diss_ap;
      size_t maxlin = 0;
      for (uint64_t seed = 1; seed <= 4; ++seed) {
        Database db = base.Clone();
        if (cfg.constant) {
          AssignConstantProbabilities(&db, cfg.pi);
        } else {
          AssignUniformProbabilities(&db, cfg.pi, seed);
        }
        auto sel = MakeTpchSelections(
            db, static_cast<int64_t>(suppliers * frac), "%red%");
        auto lineage = ComputeLineage(db, q, (*sel)->overrides);
        if (!lineage.ok()) continue;
        auto exact = ExactFromLineage(*lineage);
        if (!exact.ok()) continue;
        if (!exact->empty() && (*exact)[0].score > 0.999999) continue;
        maxlin = std::max(maxlin, MaxLineageSize(*lineage));
        lin_ap.Add(ApAgainst(*exact, LineageSizeRanking(*lineage)));
        auto diss = PropagationScore(db, q, {}, (*sel)->overrides);
        diss_ap.Add(ApAgainst(*exact, diss->answers));
        if (cfg.constant) break;  // constant pi: ranking is deterministic
      }
      if (lin_ap.count() == 0) continue;
      PrintRow({cfg.label, std::to_string(maxlin), Fmt(lin_ap.mean()),
                Fmt(diss_ap.mean())},
               14);
    }
  }
  std::printf("\n(paper: lineage ranking is good only when all tuples share "
              "one probability)\n");
  return 0;
}
