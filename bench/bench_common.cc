#include "bench/bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace dissodb {
namespace bench {

double BenchScale() {
  const char* s = std::getenv("DISSODB_BENCH_SCALE");
  if (!s) return 1.0;
  double v = std::atof(s);
  return v > 0 ? v : 1.0;
}

double TimeMs(const std::function<void()>& fn, double min_ms, int max_reps,
              int min_reps) {
  fn();  // warm-up: untimed; pages faulted in, caches and scratch primed
  double best = 1e300;
  double total = 0;
  for (int rep = 0; rep < max_reps; ++rep) {
    Timer t;
    fn();
    double ms = t.ElapsedMillis();
    best = std::min(best, ms);
    total += ms;
    if (total >= min_ms && rep + 1 >= min_reps) break;
  }
  return best;
}

void PrintHeader(const std::vector<std::string>& cols, int width) {
  for (const auto& c : cols) std::printf("%*s", width, c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < cols.size(); ++i) {
    for (int j = 0; j < width; ++j) std::printf("-");
  }
  std::printf("\n");
}

void PrintRow(const std::vector<std::string>& cells, int width) {
  for (const auto& c : cells) std::printf("%*s", width, c.c_str());
  std::printf("\n");
}

std::string Fmt(double v) { return StrFormat("%.3f", v); }

std::string FmtMs(double ms) {
  if (ms < 0) return "n/a";
  if (ms < 10) return StrFormat("%.2fms", ms);
  if (ms < 10000) return StrFormat("%.0fms", ms);
  return StrFormat("%.1fs", ms / 1000.0);
}

namespace {

struct BenchRecord {
  std::string op;
  size_t rows;
  double ns_per_row;
};

std::vector<BenchRecord>& BenchRecords() {
  static std::vector<BenchRecord> records;
  return records;
}

}  // namespace

void BenchJsonRecord(const std::string& op, size_t rows, double ns_per_row) {
  BenchRecords().push_back(BenchRecord{op, rows, ns_per_row});
}

void BenchJsonWrite(const std::string& bench_name) {
  std::string path = "BENCH_" + bench_name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\"bench\": \"%s\", \"results\": [\n", bench_name.c_str());
  const auto& records = BenchRecords();
  for (size_t i = 0; i < records.size(); ++i) {
    std::fprintf(f, "  {\"op\": \"%s\", \"rows\": %zu, \"ns_per_row\": %.3f}%s\n",
                 records[i].op.c_str(), records[i].rows, records[i].ns_per_row,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu results)\n", path.c_str(), records.size());
  BenchRecords().clear();
}

MethodTiming TimeAllMethods(const Database& db, const ConjunctiveQuery& q,
                            bool skip_all_plans) {
  MethodTiming out;
  auto sk = SchemaKnowledge::FromDatabase(q, db);
  {
    auto plans = EnumerateMinimalPlans(q, *sk);
    out.num_plans = plans->size();
  }

  // Each strategy runs through the QueryEngine facade; the first repetition
  // compiles the plan (cache miss), later repetitions measure cached-plan
  // vectorized evaluation — the engine's steady-state serving path.
  auto run = [&](bool opt1, bool opt2, bool opt3) {
    EngineOptions eo;
    eo.propagation.opt1_single_plan = opt1;
    eo.propagation.opt2_reuse_subplans = opt2;
    eo.propagation.opt3_semijoin_reduction = opt3;
    QueryEngine engine = QueryEngine::Borrow(db, eo);
    return TimeMs([&] {
      auto res = engine.Run(q);
      if (res.ok()) out.num_answers = res->answers.size();
    });
  };

  if (!skip_all_plans) {
    out.all_plans_ms = run(false, false, false);
  }
  out.opt1_ms = run(true, false, false);
  out.opt12_ms = run(true, true, false);
  out.opt123_ms = run(true, true, true);
  out.standard_sql_ms = TimeMs([&] {
    auto res = EvaluateDeterministic(db, q);
    (void)res;
  });
  return out;
}

TpchRun RunTpchMethods(const Database& db, const ConjunctiveQuery& q,
                       int64_t dollar1, const std::string& dollar2,
                       size_t wmc_budget) {
  TpchRun out;
  out.dollar1 = dollar1;
  out.dollar2 = dollar2;

  // Selections are part of each measured query (the paper's WHERE clauses).
  QueryEngine engine = QueryEngine::Borrow(db);
  EngineOptions eo3;
  eo3.propagation.opt3_semijoin_reduction = true;
  QueryEngine engine_opt3 = QueryEngine::Borrow(db, eo3);
  out.diss_ms = TimeMs([&] {
    auto sel = MakeTpchSelections(db, dollar1, dollar2);
    auto res = engine.Run(q, (*sel)->overrides);  // two minimal plans, Opt. 1+2
    if (res.ok()) out.answers = res->answers.size();
  });
  out.diss_opt3_ms = TimeMs([&] {
    auto sel = MakeTpchSelections(db, dollar1, dollar2);
    auto res = engine_opt3.Run(q, (*sel)->overrides);
    (void)res;
  });
  out.sql_ms = TimeMs([&] {
    auto sel = MakeTpchSelections(db, dollar1, dollar2);
    auto res = EvaluateDeterministic(db, q, (*sel)->overrides);
    (void)res;
  });
  out.lineage_ms = TimeMs([&] {
    auto sel = MakeTpchSelections(db, dollar1, dollar2);
    auto lin = ComputeLineage(db, q, (*sel)->overrides);
    if (lin.ok()) out.max_lineage = MaxLineageSize(*lin);
  });

  // Exact WMC (SampleSearch substitute) and MC(1k) reuse one lineage.
  auto sel = MakeTpchSelections(db, dollar1, dollar2);
  auto lin = ComputeLineage(db, q, (*sel)->overrides);
  if (lin.ok()) {
    {
      Timer t;
      WmcOptions wo;
      wo.max_calls = wmc_budget;
      auto exact = ExactFromLineage(*lin, wo);
      if (exact.ok()) out.exact_ms = out.lineage_ms + t.ElapsedMillis();
    }
    {
      Timer t;
      Rng rng(7);
      auto mc = McFromLineage(*lin, 1000, &rng);
      (void)mc;
      out.mc1k_ms = out.lineage_ms + t.ElapsedMillis();
    }
  }
  return out;
}

Database MakeFanoutDatabase(const FanoutSpec& spec) {
  Database db;
  Rng rng(spec.seed);
  auto prob = [&] {
    return spec.const_pi ? spec.pi_max : rng.NextDouble() * spec.pi_max;
  };
  Table a(RelationSchema::AllInt64("A", 2));
  Table b(RelationSchema::AllInt64("B", 2));
  Table c(RelationSchema::AllInt64("C", 1));
  std::vector<bool> c_added(spec.y_domain + 1, false);
  int64_t next_x = 1;
  for (int ans = 1; ans <= spec.num_answers; ++ans) {
    int suppliers = 1 + static_cast<int>(rng.NextBounded(
                            2 * spec.suppliers_per_answer - 1));
    for (int s = 0; s < suppliers; ++s) {
      int64_t x = next_x++;
      a.AddRow({Value::Int64(ans), Value::Int64(x)}, prob());
      // `fanout` distinct y partners per x.
      std::vector<bool> used(spec.y_domain + 1, false);
      for (int f = 0; f < spec.fanout; ++f) {
        int64_t y;
        int attempts = 0;
        do {
          y = rng.NextInt(1, spec.y_domain);
        } while (used[y] && ++attempts < 64);
        if (used[y]) break;
        used[y] = true;
        b.AddRow({Value::Int64(x), Value::Int64(y)}, prob());
        if (!c_added[y]) {
          c_added[y] = true;
          c.AddRow({Value::Int64(y)}, prob());
        }
      }
    }
  }
  (void)db.AddTable(std::move(a));
  (void)db.AddTable(std::move(b));
  (void)db.AddTable(std::move(c));
  return db;
}

ConjunctiveQuery Q3Chain() {
  auto q = ParseQuery("q(a) :- A(a,x), B(x,y), C(y)");
  return *q;
}

double MeanDissociationDegree(const LineageResult& lineage, int atom_idx,
                              size_t top_answers) {
  double total = 0;
  size_t n = 0;
  for (const auto& al : lineage.answers) {
    if (n >= top_answers) break;
    double d = lineage.MeanDistinctTuplesOfAtom(al, atom_idx);
    if (d > 0) {
      total += d;
      ++n;
    }
  }
  return n ? total / static_cast<double>(n) : 0.0;
}

double ApAgainst(const std::vector<RankedAnswer>& exact,
                 const std::vector<RankedAnswer>& scores) {
  auto gt = AlignScores(exact, exact);
  auto sys = AlignScores(exact, scores);
  return AveragePrecisionAtK(gt, sys);
}

}  // namespace bench
}  // namespace dissodb
