// Figure 5d: k-chain query runtime vs query size k (2..8), fixed n.
//
// Paper shape: the number of minimal plans grows like Catalan numbers (1,
// 2, 5, 14, 42, 132, 429); evaluating them separately explodes while the
// combined single plan (Opt. 1-2) stays close to deterministic SQL — the
// paper's "the 8-chain runs only a factor of < 10 slower than on a
// deterministic database".
#include <cstdio>

#include "bench/bench_common.h"

using namespace dissodb;        // NOLINT
using namespace dissodb::bench; // NOLINT

int main() {
  std::printf("Figure 5d: k-chain queries, runtime vs k (fixed n)\n\n");
  size_t n = static_cast<size_t>(1000 * BenchScale());
  std::printf("tuples per table: %zu\n\n", n);
  PrintHeader({"k", "#plans", "AllPlans", "Opt1", "Opt1-2", "Opt1-3", "SQL",
               "Opt123/SQL"});
  for (int k = 2; k <= 8; ++k) {
    ChainSpec spec;
    spec.k = k;
    spec.n = n;
    spec.seed = 5500 + k;
    Database db = MakeChainDatabase(spec);
    ConjunctiveQuery q = MakeChainQuery(k);
    MethodTiming t = TimeAllMethods(db, q, /*skip_all_plans=*/k >= 8);
    double ratio = t.standard_sql_ms > 0 ? t.opt123_ms / t.standard_sql_ms : 0;
    PrintRow({std::to_string(k), std::to_string(t.num_plans),
              FmtMs(t.all_plans_ms), FmtMs(t.opt1_ms), FmtMs(t.opt12_ms),
              FmtMs(t.opt123_ms), FmtMs(t.standard_sql_ms),
              StrFormat("%.1fx", ratio)});
  }
  return 0;
}
