// Figure 5h: TPC-H method runtimes as a function of the maximum lineage
// size (combining the 5e-5g parameter settings into one series).
//
// Paper shape: exact inference blows up with lineage size; MC grows
// linearly with a large constant; dissociation grows slowly and its best
// variant tracks deterministic SQL within a small factor.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace dissodb;        // NOLINT
using namespace dissodb::bench; // NOLINT

int main() {
  std::printf("Figure 5h: TPC-H runtime vs max lineage size\n\n");
  TpchOptions opts;
  opts.scale = 0.1 * BenchScale();
  Database db = MakeTpchDatabase(opts);
  ConjunctiveQuery q = TpchQuery();
  int64_t suppliers = static_cast<int64_t>((*db.GetTable("Supplier"))->NumRows());

  std::vector<TpchRun> runs;
  for (const char* pat : {"%red%green%", "%red%", "%"}) {
    for (double frac : {0.25, 1.0}) {
      int64_t dollar1 = static_cast<int64_t>(suppliers * frac);
      runs.push_back(RunTpchMethods(db, q, dollar1, pat,
                                    /*wmc_budget=*/500000));
    }
  }
  std::sort(runs.begin(), runs.end(),
            [](const TpchRun& a, const TpchRun& b) {
              return a.max_lineage < b.max_lineage;
            });
  PrintHeader({"maxlin", "$2", "Diss", "Diss+Opt3", "Exact", "MC(1k)",
               "Lineage", "SQL"});
  for (const auto& r : runs) {
    PrintRow({std::to_string(r.max_lineage), r.dollar2, FmtMs(r.diss_ms),
              FmtMs(r.diss_opt3_ms), FmtMs(r.exact_ms), FmtMs(r.mc1k_ms),
              FmtMs(r.lineage_ms), FmtMs(r.sql_ms)});
  }
  std::printf("\n('Exact' = our WMC engine standing in for SampleSearch; "
              "n/a = budget exceeded)\n");
  return 0;
}
