// Figure 5n: how much the exact ranking changes when all input
// probabilities are scaled down by a factor f.
//
// Paper shape: for small avg[pi] the ranking barely changes (MAP ~ 0.998);
// for avg[pi] = 0.5 scaling matters more (MAP drops to ~0.879 as f -> 0)
// because near-certain tuples lose their dominating influence.
#include <cstdio>

#include "bench/bench_common.h"

using namespace dissodb;        // NOLINT
using namespace dissodb::bench; // NOLINT

int main() {
  std::printf("Figure 5n: MAP@10 of the exact ranking on a scaled database "
              "w.r.t. the unscaled ground truth\n\n");
  ConjunctiveQuery q = Q3Chain();

  PrintHeader({"f", "avg[pi]=0.1", "avg[pi]=0.3", "avg[pi]=0.5"}, 14);
  for (double f : {0.8, 0.5, 0.2, 0.05, 0.01}) {
    std::vector<std::string> row = {StrFormat("%.2f", f)};
    for (double avg_pi : {0.1, 0.3, 0.5}) {
      MeanStd ap;
      // "7 different parameterized queries" -> 7 seeds of the avg[d]~3
      // workload.
      for (uint64_t seed = 1; seed <= 7; ++seed) {
        FanoutSpec spec;
        spec.fanout = 3;
        spec.pi_max = 2 * avg_pi;
        spec.seed = seed;
        Database db = MakeFanoutDatabase(spec);
        auto gt = ExactProbabilities(db, q);
        if (!gt.ok()) continue;
        Database scaled = db.Clone();
        scaled.ScaleProbabilities(f);
        auto scaled_gt = ExactProbabilities(scaled, q);
        if (!scaled_gt.ok()) continue;
        ap.Add(ApAgainst(*gt, *scaled_gt));
      }
      row.push_back(Fmt(ap.mean()));
    }
    PrintRow(row, 14);
  }
  std::printf("\n(paper: ~0.998 for small avg[pi]; ~0.879 for avg[pi]=0.5 "
              "as f -> 0)\n");
  return 0;
}
