// Figure 5l: dissociation ranking quality as a function of the average
// number of dissociations per tuple (avg[d]) for several input-probability
// levels avg[pi].
//
// Workload: controlled 3-chain q(a) :- A(a,x), B(x,y), C(y) where every x
// has exactly `fanout` y-partners. Following the paper, each data point
// ranks by ONE plan (here the plan that dissociates A on y, whose
// dissociation degree is exactly the fanout), not by the min of both plans.
//
// Paper shape: MAP decreases with avg[d] and with avg[pi]; it stays high
// when either is small.
#include <cstdio>

#include "bench/bench_common.h"

using namespace dissodb;        // NOLINT
using namespace dissodb::bench; // NOLINT

int main() {
  std::printf("Figure 5l: MAP@10 vs avg[d], per avg[pi] level\n\n");
  ConjunctiveQuery q = Q3Chain();

  PrintHeader({"fanout", "avg[d]", "avg[pi]=0.05", "avg[pi]=0.15",
               "avg[pi]=0.25", "avg[pi]=0.5"}, 13);
  for (int fanout : {1, 2, 3, 4, 5}) {
    std::vector<std::string> row = {std::to_string(fanout)};
    double avg_d = 0;
    bool have_d = false;
    for (double avg_pi : {0.05, 0.15, 0.25, 0.5}) {
      MeanStd ap;
      for (uint64_t seed = 1; seed <= 6; ++seed) {
        FanoutSpec spec;
        spec.fanout = fanout;
        spec.pi_max = 2 * avg_pi;  // uniform [0, 2*avg] has mean avg
        spec.seed = seed;
        Database db = MakeFanoutDatabase(spec);
        auto lineage = ComputeLineage(db, q);
        if (!lineage.ok()) continue;
        if (!have_d) {
          // avg[d] of the A-dissociating plan: copies of each A-tuple =
          // distinct y-partners = the fanout.
          avg_d = MeanDissociationDegree(*lineage, /*atom_idx=*/0);
          have_d = true;
        }
        auto exact = ExactFromLineage(*lineage);
        if (!exact.ok()) continue;
        auto plans = EnumerateMinimalPlans(q);
        PlanPtr plan_a;
        for (const auto& p : *plans) {
          if (ExtractDissociation(p, q).extra[0] != 0) plan_a = p;
        }
        auto scores = PlanScore(db, q, plan_a);
        ap.Add(ApAgainst(*exact, *scores));
      }
      row.push_back(Fmt(ap.mean()));
    }
    row.insert(row.begin() + 1, Fmt(avg_d));
    PrintRow(row, 13);
  }
  std::printf("\n(paper: quality drops with avg[d] mostly at high avg[pi]; "
              "for small probabilities dissociation stays near 1)\n");
  return 0;
}
