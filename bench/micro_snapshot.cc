// Snapshot-isolated serving benchmark: snapshot-acquire cost, writer
// commit cost, and reader throughput with and without a concurrent writer.
//
// Database: R(a,b) with n rows (a uniform in [0,64), b uniform in
// [0,64)), S(b) with 64 rows. Serving workload: the prepared query
// q(x) :- R(x,$0), S($0) executed with 64 distinct parameter bindings
// through ExecuteBatch (pooled, result-cache enabled).
//
// Measurements (BENCH_micro_snapshot.json):
//   - snapshot_acquire      ns per Database::snapshot() on the quiescent
//                           database (O(#tables) handle copies; asserted
//                           payload-copy-free via chunk-handle identity)
//   - commit_append         ns/row to stage + commit a 256-row append
//   - commit_append_chunked ns/row for 1K- and 100K-row append commits
//                           into the full-size table (chunked weight
//                           column: cost ∝ delta, not table size)
//   - serve_solo            ns/query for the 64-binding batch, no writer
//   - serve_under_appends   ns/query for the batch interleaved with
//                           append-only commits (result-cache entries
//                           delta-maintained across versions), plus the
//                           post-append cache-hit rate
//   - serve_with_writer     same batch while a writer thread continuously
//                           commits appends + rescalings (noisy: skipped
//                           by compare_bench)
//
// Unconditional acceptance gates:
//   - snapshot() shares every chunk handle with the live table (copy-free),
//   - a 1K-row append commit into the full-size table costs at most 8x
//     the same append into a 100x smaller table (O(delta), not O(table);
//     the pre-chunking flat weight column re-copied every weight on
//     commit, scaling ns/row with table size),
//   - with delta maintenance on, >= 95% of post-append batch executions
//     are served from the result cache (entries rolled forward at commit,
//     not swept and recomputed),
//   - a snapshot pinned before the concurrent phase returns bit-identical
//     rankings after every commit the writer publishes,
//   - the concurrent phase completes with readers and writer interleaving
//     (versions strictly increase; reader results match some published
//     version's reference).
//
//   $ ./micro_snapshot
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench/bench_common.h"

using namespace dissodb;         // NOLINT: bench brevity
using namespace dissodb::bench;  // NOLINT

namespace {

constexpr int64_t kValues = 64;

Database MakeServeDatabase(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Database db;
  Table r(RelationSchema::AllInt64("R", 2));
  r.Reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    r.AddRow({Value::Int64(rng.NextInt(0, kValues - 1)),
              Value::Int64(rng.NextInt(0, kValues - 1))},
             0.05 + 0.9 * rng.NextDouble());
  }
  if (!db.AddTable(std::move(r)).ok()) std::abort();
  Table s(RelationSchema::AllInt64("S", 1));
  for (int64_t v = 0; v < kValues; ++v) {
    s.AddRow({Value::Int64(v)}, 0.5 + 0.4 * rng.NextDouble());
  }
  if (!db.AddTable(std::move(s)).ok()) std::abort();
  return db;
}

bool SameRanking(const std::vector<RankedAnswer>& a,
                 const std::vector<RankedAnswer>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].tuple == b[i].tuple) || a[i].score != b[i].score) return false;
  }
  return true;
}

}  // namespace

int main() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int threads = static_cast<int>(std::min(hw ? hw : 1u, 8u));
  const size_t rows = static_cast<size_t>(1'000'000 * BenchScale());

  Database db = MakeServeDatabase(rows, 42);

  // -- Snapshot acquisition: O(#tables) handle copies, no payloads --------
  {
    Snapshot snap = db.snapshot();
    for (int c = 0; c < 2; ++c) {
      const Column& live = *db.table(0).col(c);
      for (size_t ci = 0; ci < live.num_chunks(); ++ci) {
        if (snap.table(0).col(c)->chunk(ci) != live.chunk(ci)) {
          std::printf("FAIL: snapshot copied a chunk payload\n");
          return 1;
        }
      }
    }
  }
  const double acquire_ms = TimeMs([&] {
    for (int i = 0; i < 1000; ++i) {
      Snapshot s = db.snapshot();
      (void)s;
    }
  });
  const double acquire_ns = acquire_ms * 1e6 / 1000.0;

  // -- Writer commit cost: stage + publish a 256-row append ---------------
  constexpr size_t kAppend = 256;
  const double commit_ms = TimeMs([&] {
    Database::Writer w = db.BeginWrite();
    Table* t = w.mutable_table(0);
    for (size_t i = 0; i < kAppend; ++i) {
      t->AddRow({Value::Int64(static_cast<int64_t>(i) % kValues),
                 Value::Int64(static_cast<int64_t>(i) % kValues)},
                0.5);
    }
    w.Commit();
  });
  const double commit_ns_row = commit_ms * 1e6 / kAppend;

  // -- Chunked append commits: cost ∝ delta, not table size ---------------
  // Scratch instances so the repeated timed appends don't grow the serving
  // table above.
  auto append_rows = [](Database* target, size_t n) {
    Database::Writer w = target->BeginWrite();
    Table* t = w.mutable_table(0);
    for (size_t i = 0; i < n; ++i) {
      t->AddRow({Value::Int64(static_cast<int64_t>(i) % kValues),
                 Value::Int64(static_cast<int64_t>(i) % kValues)},
                0.5);
    }
    w.Commit();
  };
  double big_1k_ns_row, big_100k_ns_row, small_1k_ns_row;
  {
    Database big = MakeServeDatabase(rows, 43);
    const size_t small_rows = std::max<size_t>(rows / 100, 1000);
    Database small = MakeServeDatabase(small_rows, 44);
    big_1k_ns_row = TimeMs([&] { append_rows(&big, 1000); }) * 1e6 / 1000.0;
    big_100k_ns_row =
        TimeMs([&] { append_rows(&big, 100000); }, 50.0, 3, 1) * 1e6 /
        100000.0;
    small_1k_ns_row =
        TimeMs([&] { append_rows(&small, 1000); }) * 1e6 / 1000.0;
  }
  // O(delta) gate: with sealed weight/payload chunks shared into the
  // writer and only the tail chunk copied, the base table's size must not
  // matter. 8x leaves noise headroom; the flat-column behavior this
  // guards against is ~100x (1M vs 10K rows re-copied per commit).
  if (big_1k_ns_row > 8.0 * small_1k_ns_row) {
    std::printf(
        "FAIL: 1K-row append commit scales with table size "
        "(%.1f ns/row into %zu rows vs %.1f ns/row into %zu rows)\n",
        big_1k_ns_row, rows, small_1k_ns_row,
        std::max<size_t>(rows / 100, 1000));
    return 1;
  }

  // -- Serving workload ----------------------------------------------------
  EngineOptions opts;
  opts.num_threads = threads;
  // The 64-binding workload caches ~2 recipe-carrying subplans per binding
  // (root projection + join); raise the per-commit maintenance budget so
  // every hot entry rolls forward in the serve_under_appends phase.
  opts.delta_maintain_limit = 256;
  QueryEngine engine = QueryEngine::Borrow(db, opts);
  auto prepared = engine.Prepare("q(x) :- R(x,$0), S($0)");
  if (!prepared.ok()) {
    std::printf("prepare failed: %s\n", prepared.status().ToString().c_str());
    return 1;
  }
  std::vector<PreparedQuery> batch;
  std::vector<Bindings> bindings;
  for (int64_t v = 0; v < kValues; ++v) {
    batch.push_back(*prepared);
    bindings.push_back(Bindings().Set(0, Value::Int64(v)));
  }
  auto run_batch = [&] {
    auto results = engine.ExecuteBatch(batch, bindings);
    for (const auto& r : results) {
      if (!r.ok()) std::abort();
    }
  };
  run_batch();  // warm the pool and the plan cache
  const double solo_ms = TimeMs(run_batch);

  // -- Serving under append-only commits ----------------------------------
  // Rounds of (64-row append commit; 64-binding batch). The commit hook
  // delta-maintains the cached subplans to the new version, so the
  // post-append batches keep hitting the result cache instead of
  // recomputing from scratch.
  constexpr int kRounds = 8;
  size_t appended_batches = 0;
  size_t hit_execs = 0;
  size_t total_execs = 0;
  auto run_rounds = [&] {
    for (int round = 0; round < kRounds; ++round) {
      {
        Database::Writer w = db.BeginWrite();
        Table* t = w.mutable_table(0);
        for (int i = 0; i < 64; ++i) {
          t->AddRow({Value::Int64(static_cast<int64_t>(appended_batches) %
                                  kValues),
                     Value::Int64(i % kValues)},
                    0.5);
        }
        w.Commit();
      }
      ++appended_batches;
      auto results = engine.ExecuteBatch(batch, bindings);
      for (const auto& r : results) {
        if (!r.ok()) std::abort();
        ++total_execs;
        if ((*r).result_cache_hits > 0) ++hit_execs;
      }
    }
  };
  const double under_ms = TimeMs(run_rounds, 50.0, 3, 1);
  const double under_ns_q = under_ms * 1e6 / (kRounds * kValues);
  const double hit_rate =
      total_execs ? static_cast<double>(hit_execs) / total_execs : 0.0;
  if (hit_rate < 0.95) {
    std::printf(
        "FAIL: post-append cache-hit rate %.3f < 0.95 — append-only "
        "commits swept (or failed to maintain) hot result-cache entries\n",
        hit_rate);
    return 1;
  }

  // -- Readers vs writer ---------------------------------------------------
  const Snapshot pinned = db.snapshot();
  auto baseline = engine.Execute(*prepared, bindings[7], pinned);
  if (!baseline.ok()) std::abort();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> commits{0};
  std::thread writer([&] {
    uint64_t last_version = db.version();
    int k = 0;
    while (!stop.load(std::memory_order_acquire)) {
      Database::Writer w = db.BeginWrite();
      Table* t = w.mutable_table(0);
      for (int i = 0; i < 64; ++i) {
        t->AddRow({Value::Int64(k % kValues), Value::Int64(i % kValues)},
                  0.5);
      }
      if (k % 8 == 0) w.ScaleProbabilities(0.9999);
      const uint64_t v = w.Commit();
      if (v <= last_version) {
        std::printf("FAIL: commit did not advance the version\n");
        std::abort();
      }
      last_version = v;
      commits.fetch_add(1, std::memory_order_relaxed);
      ++k;
    }
  });
  const double busy_ms = TimeMs(run_batch);
  // Pinned snapshot: bit-identical after every commit so far.
  for (int rep = 0; rep < 3; ++rep) {
    auto again = engine.Execute(*prepared, bindings[7], pinned);
    if (!again.ok() || !SameRanking(again->answers, baseline->answers)) {
      std::printf("FAIL: pinned snapshot result changed under commits\n");
      stop.store(true);
      writer.join();
      return 1;
    }
  }
  stop.store(true, std::memory_order_release);
  writer.join();

  const double solo_ns_q = solo_ms * 1e6 / static_cast<double>(kValues);
  const double busy_ns_q = busy_ms * 1e6 / static_cast<double>(kValues);

  std::printf("micro_snapshot: R(a,b) with %zu rows, %d-thread pool\n\n",
              rows, threads);
  PrintHeader({"metric", "value"});
  PrintRow({"snapshot_acquire_ns", Fmt(acquire_ns)});
  PrintRow({"commit_append_ns_row", Fmt(commit_ns_row)});
  PrintRow({"commit_append_1k_ns_row", Fmt(big_1k_ns_row)});
  PrintRow({"commit_append_100k_ns_row", Fmt(big_100k_ns_row)});
  PrintRow({"commit_append_1k_small_ns_row", Fmt(small_1k_ns_row)});
  PrintRow({"serve_solo_ns_q", Fmt(solo_ns_q)});
  PrintRow({"serve_under_appends_ns_q", Fmt(under_ns_q)});
  PrintRow({"cache_hit_rate_under_appends", Fmt(hit_rate)});
  PrintRow({"serve_with_writer_ns_q", Fmt(busy_ns_q)});
  PrintRow({"writer_commits", Fmt(static_cast<double>(commits.load()))});

  BenchJsonRecord("snapshot_acquire", db.NumTables(), acquire_ns);
  BenchJsonRecord("commit_append", kAppend, commit_ns_row);
  BenchJsonRecord("commit_append_chunked", 1000, big_1k_ns_row);
  BenchJsonRecord("commit_append_chunked", 100000, big_100k_ns_row);
  BenchJsonRecord("serve_solo", kValues, solo_ns_q);
  BenchJsonRecord("serve_under_appends", kValues, under_ns_q);
  // A rate, not a time: skipped by compare_bench via --skip.
  BenchJsonRecord("result_cache_hit_rate_under_appends", total_execs,
                  hit_rate);
  BenchJsonRecord("serve_with_writer", kValues, busy_ns_q);
  BenchJsonWrite("micro_snapshot");

  std::printf("\npinned-snapshot bit-identity held across %llu concurrent "
              "commits; serve slowdown under writer %.2fx\n",
              static_cast<unsigned long long>(commits.load()),
              busy_ns_q / solo_ns_q);
  {
    const EngineStats es = engine.stats();
    std::printf("result cache: %zu entries delta-maintained across "
                "append-only commits, %zu swept; post-append hit rate "
                "%.3f\n",
                es.result_cache_delta_maintained, es.result_cache_swept,
                hit_rate);
  }

  // Scheduler telemetry across the serving phases: where do the tail
  // latencies of serve_with_writer come from — queue wait (pool saturated)
  // or run time (evaluation slowed by the writer)?
  {
    auto wait = engine.metrics()
                    .histogram("scheduler.queue_wait_ns.query")
                    ->Snapshot();
    auto run =
        engine.metrics().histogram("scheduler.run_ns.query")->Snapshot();
    const uint64_t morsels =
        engine.metrics().counter("scheduler.morsels")->Value();
    std::printf("scheduler telemetry (task class 'query', %llu tasks):\n",
                static_cast<unsigned long long>(wait.count));
    std::printf("  queue wait: p50=%.0fns p95=%.0fns p99=%.0fns max=%lluns\n",
                wait.p50(), wait.p95(), wait.p99(),
                static_cast<unsigned long long>(wait.max));
    std::printf("  run time:   p50=%.0fns p95=%.0fns p99=%.0fns max=%lluns\n",
                run.p50(), run.p95(), run.p99(),
                static_cast<unsigned long long>(run.max));
    std::printf("  parallel-for morsels: %llu\n",
                static_cast<unsigned long long>(morsels));
  }
  return 0;
}
