// Figure 5j: ranking quality as a function of the average answer
// probability avg[pa] of the top-10 answers.
//
// Paper shape: MC degrades towards the random baseline (0.22) when answer
// probabilities approach 0 or 1 (the top answers become statistically
// indistinguishable); dissociation and the true ranking are unaffected.
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_common.h"

using namespace dissodb;        // NOLINT
using namespace dissodb::bench; // NOLINT

int main() {
  std::printf("Figure 5j: MAP@10 vs avg[pa] of the top-10 answers\n\n");
  ConjunctiveQuery q = TpchQuery();

  struct Bucket {
    MeanStd diss, lin, mc100, mc1k;
    int n = 0;
  };
  std::map<int, Bucket> buckets;  // keyed by -log10(1 - avg[pa]) style bins

  auto bucket_of = [](double pa) {
    if (pa < 0.5) return 0;
    if (pa < 0.9) return 1;
    if (pa < 0.99) return 2;
    return 3;
  };
  const char* bucket_names[] = {"<0.5", "0.5-0.9", "0.9-0.99", ">0.99"};

  for (double pi_max : {0.1, 0.3, 0.5, 0.8, 1.0}) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      TpchOptions o;
      o.scale = 0.04 * BenchScale();
      o.seed = seed;
      o.pi_max = pi_max;
      Database db = MakeTpchDatabase(o);
      int64_t suppliers =
          static_cast<int64_t>((*db.GetTable("Supplier"))->NumRows());
      auto sel = MakeTpchSelections(db, suppliers, "%red%");
      auto lineage = ComputeLineage(db, q, (*sel)->overrides);
      if (!lineage.ok()) continue;
      auto exact = ExactFromLineage(*lineage);
      if (!exact.ok()) continue;
      size_t top = std::min<size_t>(10, exact->size());
      if (top < 5) continue;
      double avg_pa = 0;
      for (size_t i = 0; i < top; ++i) avg_pa += (*exact)[i].score;
      avg_pa /= top;
      if ((*exact)[0].score > 0.999999) continue;  // paper's filter

      Bucket& b = buckets[bucket_of(avg_pa)];
      ++b.n;
      auto diss = PropagationScore(db, q, {}, (*sel)->overrides);
      b.diss.Add(ApAgainst(*exact, diss->answers));
      b.lin.Add(ApAgainst(*exact, LineageSizeRanking(*lineage)));
      for (int rep = 0; rep < 3; ++rep) {
        Rng r1(seed * 100 + rep), r2(seed * 100 + 50 + rep);
        b.mc100.Add(ApAgainst(*exact, McFromLineage(*lineage, 100, &r1)));
        b.mc1k.Add(ApAgainst(*exact, McFromLineage(*lineage, 1000, &r2)));
      }
    }
  }

  PrintHeader({"avg[pa]", "runs", "Diss", "MC(100)", "MC(1k)", "Lineage"});
  for (const auto& [key, b] : buckets) {
    PrintRow({bucket_names[key], std::to_string(b.n), Fmt(b.diss.mean()),
              Fmt(b.mc100.mean()), Fmt(b.mc1k.mean()), Fmt(b.lin.mean())});
  }
  std::printf("\n(paper: MC approaches the 0.22 random baseline as avg[pa] "
              "-> 1; dissociation stays high)\n");
  return 0;
}
