// google-benchmark microbenchmarks of the engine primitives: scans, hash
// joins, independent projections, cut enumeration, plan construction and
// exact WMC. These are the building blocks whose costs the figure benches
// aggregate.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

using namespace dissodb;        // NOLINT
using namespace dissodb::bench; // NOLINT

namespace {

Database* ChainDb(int k, size_t n) {
  static std::map<std::pair<int, size_t>, std::unique_ptr<Database>> cache;
  auto key = std::make_pair(k, n);
  auto it = cache.find(key);
  if (it == cache.end()) {
    ChainSpec spec;
    spec.k = k;
    spec.n = n;
    spec.seed = 999;
    it = cache.emplace(key, std::make_unique<Database>(MakeChainDatabase(spec)))
             .first;
  }
  return it->second.get();
}

void BM_ScanAtom(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Database* db = ChainDb(2, n);
  ConjunctiveQuery q = MakeChainQuery(2);
  for (auto _ : state) {
    auto rel = ScanAtom(*db, q, 0);
    benchmark::DoNotOptimize(rel->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ScanAtom)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_HashJoin(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Database* db = ChainDb(2, n);
  ConjunctiveQuery q = MakeChainQuery(2);
  auto left = ScanAtom(*db, q, 0);
  auto right = ScanAtom(*db, q, 1);
  for (auto _ : state) {
    Rel out = HashJoin(*left, *right);
    benchmark::DoNotOptimize(out.NumRows());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HashJoin)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_ProjectIndependent(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Database* db = ChainDb(2, n);
  ConjunctiveQuery q = MakeChainQuery(2);
  auto rel = ScanAtom(*db, q, 0);
  VarMask keep = MaskOf(q.FindVar("x0"));
  for (auto _ : state) {
    Rel out = ProjectIndependent(*rel, keep);
    benchmark::DoNotOptimize(out.NumRows());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ProjectIndependent)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_MinCutsChain(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeChainQuery(k);
  SchemaKnowledge none = SchemaKnowledge::None(q);
  auto atoms = MakeWorkAtoms(q, none);
  for (auto _ : state) {
    auto cuts = MinCuts(atoms, q.EVarMask());
    benchmark::DoNotOptimize(cuts->size());
  }
}
BENCHMARK(BM_MinCutsChain)->Arg(4)->Arg(8);

void BM_EnumerateMinimalPlans(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeChainQuery(k);
  for (auto _ : state) {
    auto plans = EnumerateMinimalPlans(q);
    benchmark::DoNotOptimize(plans->size());
  }
}
BENCHMARK(BM_EnumerateMinimalPlans)->Arg(4)->Arg(6)->Arg(8);

void BM_BuildSinglePlan(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  ConjunctiveQuery q = MakeChainQuery(k);
  SchemaKnowledge none = SchemaKnowledge::None(q);
  for (auto _ : state) {
    auto plan = BuildSinglePlan(q, none);
    benchmark::DoNotOptimize(plan->get());
  }
}
BENCHMARK(BM_BuildSinglePlan)->Arg(4)->Arg(8);

void BM_ExactWmcLadder(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Dnf f;
  for (int i = 0; i < n; ++i) f.probs.push_back(0.5);
  for (int i = 0; i + 2 < n; ++i) f.terms.push_back({i, i + 1, i + 2});
  for (auto _ : state) {
    auto p = ExactDnfProbability(f);
    benchmark::DoNotOptimize(*p);
  }
}
BENCHMARK(BM_ExactWmcLadder)->Arg(16)->Arg(64);

void BM_NaiveMc(benchmark::State& state) {
  Dnf f;
  for (int i = 0; i < 64; ++i) f.probs.push_back(0.3);
  for (int i = 0; i + 2 < 64; ++i) f.terms.push_back({i, i + 1, i + 2});
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(NaiveDnfEstimate(f, 1000, &rng));
  }
}
BENCHMARK(BM_NaiveMc);

void BM_PropagationChain4(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Database* db = ChainDb(4, n);
  ConjunctiveQuery q = MakeChainQuery(4);
  for (auto _ : state) {
    auto res = PropagationScore(*db, q);
    benchmark::DoNotOptimize(res->answers.size());
  }
}
BENCHMARK(BM_PropagationChain4)->Arg(1000)->Arg(10000);

void BM_EngineCachedQuery(benchmark::State& state) {
  // Steady-state facade path: parse + plan-cache hit + vectorized eval.
  size_t n = static_cast<size_t>(state.range(0));
  Database* db = ChainDb(4, n);
  QueryEngine engine = QueryEngine::Borrow(*db);
  ConjunctiveQuery q = MakeChainQuery(4);
  for (auto _ : state) {
    auto res = engine.Run(q);
    benchmark::DoNotOptimize(res->answers.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineCachedQuery)->Arg(1000)->Arg(10000);

/// One timed operator pass over a size-n 2-chain database, shared by the
/// JSON capture cases below.
double MeasureScanMs(size_t n) {
  Database* db = ChainDb(2, n);
  ConjunctiveQuery q = MakeChainQuery(2);
  return TimeMs([&] {
    auto rel = ScanAtom(*db, q, 0);
    benchmark::DoNotOptimize(rel->NumRows());
  });
}

double MeasureJoinMs(size_t n) {
  Database* db = ChainDb(2, n);
  ConjunctiveQuery q = MakeChainQuery(2);
  auto left = ScanAtom(*db, q, 0);
  auto right = ScanAtom(*db, q, 1);
  return TimeMs([&] {
    Rel out = HashJoin(*left, *right);
    benchmark::DoNotOptimize(out.NumRows());
  });
}

double MeasureProjectMs(size_t n) {
  Database* db = ChainDb(2, n);
  ConjunctiveQuery q = MakeChainQuery(2);
  auto rel = ScanAtom(*db, q, 0);
  VarMask keep = MaskOf(q.FindVar("x0"));
  return TimeMs([&] {
    Rel out = ProjectIndependent(*rel, keep);
    benchmark::DoNotOptimize(out.NumRows());
  });
}

double MeasureSemiJoinMs(size_t n) {
  // A 3-chain reduces every table against its neighbors; at this size the
  // build sides clear the Bloom threshold, so this times the filtered path.
  Database* db = ChainDb(3, n);
  ConjunctiveQuery q = MakeChainQuery(3);
  return TimeMs([&] {
    auto reduced = SemiJoinReduce(*db, q);
    benchmark::DoNotOptimize(reduced->size());
  });
}

double MeasureProjectBooleanMs(size_t n) {
  // Empty keep-mask: every row folds into one group — the fused
  // complement-product accumulator's fast path.
  Database* db = ChainDb(2, n);
  ConjunctiveQuery q = MakeChainQuery(2);
  auto rel = ScanAtom(*db, q, 0);
  return TimeMs([&] {
    Rel out = ProjectIndependent(*rel, 0);
    benchmark::DoNotOptimize(out.NumRows());
  });
}

/// Machine-readable capture of the headline operators (BENCH_*.json): the
/// numbers the perf trajectory is tracked by across PRs.
void CaptureJson() {
  struct OpCase {
    const char* op;
    size_t rows;
    double (*measure_ms)(size_t);
  };
  for (OpCase oc : {OpCase{"scan_atom", 1000000, MeasureScanMs},
                    OpCase{"hash_join", 1000000, MeasureJoinMs},
                    OpCase{"project_independent", 1000000, MeasureProjectMs},
                    OpCase{"hash_join", 100000, MeasureJoinMs},
                    OpCase{"project_independent", 100000, MeasureProjectMs},
                    OpCase{"semijoin_reduce", 100000, MeasureSemiJoinMs},
                    OpCase{"project_boolean", 1000000,
                           MeasureProjectBooleanMs}}) {
    double ms = oc.measure_ms(oc.rows);
    BenchJsonRecord(oc.op, oc.rows, ms * 1e6 / static_cast<double>(oc.rows));
  }
  {
    // Facade steady state at 10k rows (chain-4 propagation query).
    const size_t n = 10000;
    Database* db = ChainDb(4, n);
    QueryEngine engine = QueryEngine::Borrow(*db);
    ConjunctiveQuery q = MakeChainQuery(4);
    double ms = TimeMs([&] {
      auto res = engine.Run(q);
      benchmark::DoNotOptimize(res->answers.size());
    });
    BenchJsonRecord("engine_cached_query_chain4", n,
                    ms * 1e6 / static_cast<double>(n));
  }
  BenchJsonWrite("micro_operators");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  CaptureJson();
  return 0;
}
