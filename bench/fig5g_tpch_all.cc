// Figure 5g: TPC-H query runtime vs $1, with $2 = '%' (no name selection).
//
// Paper shape: the largest lineages — exact inference becomes infeasible
// ("n/a" below, like the paper's missing SampleSearch points); MC is slow;
// dissociation stays within a small factor of deterministic SQL and the
// semi-join reduction no longer helps (everything joins).
#include <cstdio>

#include "bench/bench_common.h"

using namespace dissodb;        // NOLINT
using namespace dissodb::bench; // NOLINT

int main() {
  std::printf("Figure 5g: TPC-H runtime, $2 = '%%'\n\n");
  TpchOptions opts;
  opts.scale = 0.1 * BenchScale();
  Database db = MakeTpchDatabase(opts);
  ConjunctiveQuery q = TpchQuery();
  int64_t suppliers = static_cast<int64_t>((*db.GetTable("Supplier"))->NumRows());
  std::printf("scale %.3f: %lld suppliers\n\n", opts.scale,
              static_cast<long long>(suppliers));
  PrintHeader({"$1", "maxlin", "Diss", "Diss+Opt3", "Exact", "MC(1k)",
               "Lineage", "SQL"});
  for (double frac : {0.1, 0.25, 0.5, 1.0}) {
    int64_t dollar1 = static_cast<int64_t>(suppliers * frac);
    // Tight WMC budget: with '%' the lineage treewidth explodes and the
    // paper could not compute ground truth either.
    TpchRun r = RunTpchMethods(db, q, dollar1, "%", /*wmc_budget=*/200000);
    PrintRow({std::to_string(dollar1), std::to_string(r.max_lineage),
              FmtMs(r.diss_ms), FmtMs(r.diss_opt3_ms), FmtMs(r.exact_ms),
              FmtMs(r.mc1k_ms), FmtMs(r.lineage_ms), FmtMs(r.sql_ms)});
  }
  return 0;
}
