// Figure 2 (table): number of minimal plans, total plans, and dissociations
// for k-star and k-chain queries.
//
// Expected (paper): stars: #MP = k!, #P = A000670 (Fubini), #Delta =
// 2^(k(k-1)); chains: #MP = A000108 (Catalan), #P = A001003 (super-
// Catalan), #Delta = 2^((k-1)(k-2)).
//
// The extra column #SafeDiss is this project's exact count of hierarchical
// dissociations (Definition 13); see EXPERIMENTS.md for why it can exceed
// the paper's #P for k >= 4.
#include <cstdio>

#include "bench/bench_common.h"

using namespace dissodb;        // NOLINT
using namespace dissodb::bench; // NOLINT

namespace {

std::string CountOr(const Result<uint64_t>& r, const char* fallback) {
  return r.ok() ? std::to_string(*r) : std::string(fallback);
}

void Row(const char* kind, int k, const ConjunctiveQuery& q,
         bool safe_feasible) {
  auto mp = CountMinimalPlans(q);
  auto tp = CountTotalPlans(q);
  auto sd = safe_feasible ? CountSafeDissociations(q)
                          : Result<uint64_t>(Status::OutOfRange("skipped"));
  int expo = DissociationExponent(q);
  auto ad = CountAllDissociations(q);
  std::string delta = ad.ok() && expo <= 40
                          ? std::to_string(*ad)
                          : "2^" + std::to_string(expo);
  PrintRow({kind, std::to_string(k), CountOr(mp, "-"), CountOr(tp, "-"),
            CountOr(sd, "-"), delta});
}

}  // namespace

int main() {
  std::printf("Figure 2: plan and dissociation counts\n");
  std::printf("(paper: stars #MP=k!, #P=A000670; chains #MP=Catalan, "
              "#P=A001003; #Delta=2^K)\n\n");
  PrintHeader({"query", "k", "#MP", "#P(Fig2)", "#SafeDiss", "#Delta"});
  for (int k = 1; k <= 7; ++k) {
    Row("k-star", k, MakeStarQuery(k), /*safe_feasible=*/k <= 4);
  }
  std::printf("\n");
  for (int k = 2; k <= 8; ++k) {
    Row("k-chain", k, MakeChainQuery(k), /*safe_feasible=*/k <= 6);
  }
  std::printf("\nNote: #SafeDiss is the exact number of hierarchical\n"
              "dissociations; '-' marks sizes skipped for time.\n");
  return 0;
}
