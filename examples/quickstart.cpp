// Quickstart: build a probabilistic database, run an unsafe query, compare
// the dissociation upper bound with the exact probability.
//
//   $ ./quickstart
//
// The query q() :- R(x), S(x,y), T(y) is the canonical #P-hard query: its
// probability cannot be computed efficiently in general, but every query
// plan gives an upper bound and the propagation score (the minimum over all
// minimal plans) is usually very close.
#include <cstdio>

#include "src/dissodb.h"

using namespace dissodb;  // NOLINT: example brevity

int main() {
  // 1. A tuple-independent probabilistic database: every tuple carries the
  //    probability that it exists; tuples are independent.
  Database db;
  {
    Table r(RelationSchema::AllInt64("R", 1));
    r.AddRow({Value::Int64(1)}, 0.7);
    r.AddRow({Value::Int64(2)}, 0.5);
    Table s(RelationSchema::AllInt64("S", 2));
    s.AddRow({Value::Int64(1), Value::Int64(10)}, 0.9);
    s.AddRow({Value::Int64(1), Value::Int64(20)}, 0.4);
    s.AddRow({Value::Int64(2), Value::Int64(20)}, 0.8);
    Table t(RelationSchema::AllInt64("T", 1));
    t.AddRow({Value::Int64(10)}, 0.6);
    t.AddRow({Value::Int64(20)}, 0.3);
    (void)db.AddTable(std::move(r));
    (void)db.AddTable(std::move(s));
    (void)db.AddTable(std::move(t));
  }

  // 2. Parse a query in datalog syntax.
  const char* kQueryText = "q() :- R(x), S(x,y), T(y)";
  auto q = ParseQuery(kQueryText);
  if (!q.ok()) {
    std::printf("parse error: %s\n", q.status().ToString().c_str());
    return 1;
  }
  std::printf("query:  %s\n", q->ToString().c_str());
  std::printf("safe:   %s (hierarchical: %s)\n\n",
              IsHierarchical(*q) ? "yes" : "no",
              IsHierarchical(*q) ? "yes" : "no");

  // 3. Enumerate the minimal plans (Algorithm 1). Each plan is an upper
  //    bound; a safe query would have exactly one plan, which is exact.
  auto plans = EnumerateMinimalPlans(*q);
  std::printf("minimal plans (%zu):\n", plans->size());
  for (const auto& p : *plans) {
    auto scores = PlanScore(db, *q, p);
    std::printf("  %-55s score = %.6f\n", PlanToString(p, *q).c_str(),
                scores->empty() ? 0.0 : (*scores)[0].score);
  }

  // 4. The propagation score through the QueryEngine facade: one object
  //    owning parse -> plan choice -> vectorized evaluation, with compiled
  //    plans cached across calls (safe for concurrent readers).
  QueryEngine engine = QueryEngine::Borrow(db);
  auto rho = engine.RunBoolean(kQueryText);
  if (!rho.ok()) {
    std::printf("query failed: %s\n", rho.status().ToString().c_str());
    return 1;
  }
  std::printf("\npropagation score rho(q) = %.6f\n", *rho);
  (void)engine.RunBoolean(kQueryText);  // plan-cache hit
  auto stats = engine.stats();
  std::printf("engine: %zu queries, %zu plan-cache hits, %zu misses\n",
              stats.queries, stats.plan_cache_hits, stats.plan_cache_misses);

  // 5. Ground truth by exact weighted model counting on the lineage.
  auto exact = ExactProbabilities(db, *q);
  double p_exact = exact->empty() ? 0.0 : (*exact)[0].score;
  std::printf("exact probability  P(q) = %.6f\n", p_exact);
  std::printf("relative error           = %.2f%%\n",
              100.0 * (*rho - p_exact) / p_exact);

  // 6. The generated SQL, as it would be pushed into an external DBMS.
  auto sk = SchemaKnowledge::FromDatabase(*q, db);
  SinglePlanOptions spo;
  auto single = BuildSinglePlan(*q, *sk, spo);
  std::printf("\nsingle combined plan (Opt. 1+2):\n%s\n",
              PlanToTreeString(*single, *q).c_str());
  std::printf("equivalent SQL:\n%s\n", PlanToSql(*single, *q, db).c_str());
  return 0;
}
