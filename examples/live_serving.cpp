// Concurrent read/write serving with snapshot isolation.
//
// A writer thread continuously re-weights and extends a small knowledge
// base through Database::Writer transactions while the main thread serves
// the same ranking query three ways:
//   - pinned:  against one Snapshot held from before the writer started —
//              scores never move, bit-for-bit,
//   - live:    against a fresh snapshot per request — scores track commits,
//   - async:   through Submit() with a pinned snapshot — pooled execution
//              sharing subplans in the version-stamped result cache.
//
// Build & run:  ./live_serving
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "src/dissodb.h"

using namespace dissodb;  // NOLINT: example brevity

int main() {
  Database db;
  {
    Table likes(RelationSchema::AllInt64("Likes", 2));
    likes.AddRow({Value::Int64(1), Value::Int64(100)}, 0.9);
    likes.AddRow({Value::Int64(2), Value::Int64(100)}, 0.8);
    likes.AddRow({Value::Int64(2), Value::Int64(200)}, 0.7);
    likes.AddRow({Value::Int64(3), Value::Int64(200)}, 0.6);
    if (!db.AddTable(std::move(likes)).ok()) return 1;
    Table trendy(RelationSchema::AllInt64("Trendy", 1));
    trendy.AddRow({Value::Int64(100)}, 0.95);
    trendy.AddRow({Value::Int64(200)}, 0.5);
    if (!db.AddTable(std::move(trendy)).ok()) return 1;
  }

  EngineOptions opts;
  opts.num_threads = 2;
  QueryEngine engine = QueryEngine::Borrow(db, opts);
  auto prepared = engine.Prepare("q(u) :- Likes(u,i), Trendy(i)");
  if (!prepared.ok()) return 1;

  const Snapshot pinned = db.snapshot();
  std::printf("pinned snapshot at version %llu\n",
              static_cast<unsigned long long>(pinned.version()));

  std::atomic<bool> stop{false};
  std::thread writer([&db, &stop] {
    int64_t next_user = 10;
    while (!stop.load(std::memory_order_acquire)) {
      Database::Writer w = db.BeginWrite();
      // Decay all engagement slightly, add a new user liking item 100.
      w.ScaleProbabilities(0.97);
      w.AppendRow(0, std::vector<Value>{Value::Int64(next_user++),
                                        Value::Int64(100)},
                  0.85);
      w.Commit();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (int round = 0; round < 5; ++round) {
    // Round 0 runs traced: the span tree shows where a serving request
    // spends its time while the writer churns underneath.
    if (round == 0) {
      auto traced = engine.Execute(*prepared, Bindings().EnableTrace());
      if (traced.ok() && traced->trace != nullptr) {
        std::printf("traced serving request:\n%s",
                    traced->trace->ToText().c_str());
      }
    }
    auto pin = engine.Execute(*prepared, {}, pinned);
    auto live = engine.Execute(*prepared);
    auto fut = engine.Submit(*prepared, {}, pinned);
    auto async = fut.get();
    if (!pin.ok() || !live.ok() || !async.ok()) return 1;
    const Snapshot now = db.snapshot();
    std::printf(
        "round %d | pinned top: u=%lld %.6f (stable) | live@v%llu top: "
        "u=%lld %.6f (%zu answers)\n",
        round, pin->answers[0].tuple[0].AsInt64(), pin->answers[0].score,
        static_cast<unsigned long long>(now.version()),
        live->answers[0].tuple[0].AsInt64(), live->answers[0].score,
        live->answers.size());
    if (async->answers[0].score != pin->answers[0].score) {
      std::printf("ERROR: async pinned execution diverged\n");
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }
  stop.store(true, std::memory_order_release);
  writer.join();

  EngineStats s = engine.stats();
  std::printf(
      "\nafter serving: version %llu, result cache %zu entries "
      "(%zu delta-maintained across append-only commits, %zu swept, "
      "%zu version-stale evictions), oldest live snapshot v%llu\n",
      static_cast<unsigned long long>(db.version()),
      s.result_cache_entries, s.result_cache_delta_maintained,
      s.result_cache_swept, s.result_cache_stale_evictions,
      static_cast<unsigned long long>(db.OldestLiveSnapshotVersion()));
  // Scheduler telemetry: queue-wait and run-time histograms per task class
  // ("query" = pooled executions), the raw data for tail-latency work.
  auto wait =
      engine.metrics().histogram("scheduler.queue_wait_ns.query")->Snapshot();
  auto run = engine.metrics().histogram("scheduler.run_ns.query")->Snapshot();
  std::printf("scheduler query tasks: %llu | queue wait p50=%.0fns "
              "p95=%.0fns p99=%.0fns | run p50=%.0fns p95=%.0fns\n",
              static_cast<unsigned long long>(wait.count), wait.p50(),
              wait.p95(), wait.p99(), run.p50(), run.p95());
  std::printf("Prometheus exposition: engine.metrics().PrometheusText() "
              "(%zu bytes) — scrape-ready counters + le-bucket histograms\n",
              engine.metrics().PrometheusText().size());
  std::printf("migration note: Database::mutable_table() is deprecated — "
              "stage mutations in a Database::Writer and Commit() instead "
              "(see README \"Snapshots & concurrent serving\").\n");
  return 0;
}
