// The paper's Section 5 scenario: rank 25 nations by the probability that
// they supply a part whose name matches a pattern, on an uncertain TPC-H
// style database.
//
//   $ ./tpch_ranking [scale] [$1] [$2]
//   $ ./tpch_ranking 0.05 400 '%red%green%'
//
// Compares four rankings: dissociation (propagation score), exact
// probabilities (ground truth, when feasible), Monte Carlo, and the
// non-probabilistic lineage-size baseline — and reports AP@10 for each.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/dissodb.h"

using namespace dissodb;  // NOLINT: example brevity

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  int64_t dollar1 = argc > 2 ? std::atoll(argv[2]) : 400;
  std::string dollar2 = argc > 3 ? argv[3] : "%red%green%";

  TpchOptions opts;
  opts.scale = scale;
  opts.pi_max = 0.4;
  std::printf("generating TPC-H-like database at scale %.3f ...\n", scale);
  Database db = MakeTpchDatabase(opts);
  std::printf("  Supplier: %zu rows, Partsupp: %zu rows, Part: %zu rows\n",
              (*db.GetTable("Supplier"))->NumRows(),
              (*db.GetTable("Partsupp"))->NumRows(),
              (*db.GetTable("Part"))->NumRows());

  ConjunctiveQuery q = TpchQuery();
  std::printf("query: %s  with s_suppkey <= %lld and p_name like '%s'\n\n",
              q.ToString().c_str(), static_cast<long long>(dollar1),
              dollar2.c_str());

  auto sel = MakeTpchSelections(db, dollar1, dollar2);
  if (!sel.ok()) {
    std::printf("%s\n", sel.status().ToString().c_str());
    return 1;
  }
  const auto& overrides = (*sel)->overrides;

  // Dissociation with all optimizations, through the engine facade.
  EngineOptions eopts;
  eopts.propagation.opt3_semijoin_reduction = true;
  QueryEngine engine = QueryEngine::Borrow(db, eopts);
  Timer timer;
  auto diss = engine.Run(q, overrides);
  double t_diss = timer.ElapsedMillis();
  timer.Reset();
  auto warm = engine.Run(q, overrides);  // compiled plan now cached
  double t_warm = timer.ElapsedMillis();
  (void)warm;
  std::printf("dissociation (%zu minimal plans): %.1f ms cold, %.1f ms with "
              "cached plan\n",
              diss->num_minimal_plans, t_diss, t_warm);
  std::printf("top nations by propagation score:\n%s\n",
              RankingToString(diss->answers, db, 5).c_str());

  // Lineage, exact ground truth and MC.
  timer.Reset();
  auto lineage = ComputeLineage(db, q, overrides);
  double t_lin = timer.ElapsedMillis();
  std::printf("lineage query: %.1f ms, max lineage size = %zu\n", t_lin,
              MaxLineageSize(*lineage));

  timer.Reset();
  auto exact = ExactFromLineage(*lineage);
  if (!exact.ok()) {
    std::printf("exact inference infeasible within budget (%s); "
                "the dissociation ranking above still stands.\n",
                exact.status().ToString().c_str());
    return 0;
  }
  std::printf("exact WMC (ground truth): %.1f ms\n", timer.ElapsedMillis());

  timer.Reset();
  Rng rng(42);
  auto mc = McFromLineage(*lineage, 1000, &rng);
  std::printf("MC(1000): %.1f ms\n", timer.ElapsedMillis());
  auto lin_rank = LineageSizeRanking(*lineage);

  auto gt = AlignScores(*exact, *exact);
  std::printf("\nranking quality (AP@10 against exact ground truth):\n");
  std::printf("  dissociation      %.4f\n",
              AveragePrecisionAtK(gt, AlignScores(*exact, diss->answers)));
  std::printf("  MC(1000)          %.4f\n",
              AveragePrecisionAtK(gt, AlignScores(*exact, mc)));
  std::printf("  lineage size      %.4f\n",
              AveragePrecisionAtK(gt, AlignScores(*exact, lin_rank)));
  std::printf("  random baseline   %.4f\n",
              RandomBaselineAP(exact->size()));
  return 0;
}
