// Uncertain knowledge-base scenario (the paper's motivation: NELL, Yago,
// Knowledge Vault): facts extracted from text carry confidences; queries
// must rank answers by probability.
//
// Schema:
//   Scientist(person)            - confidence the entity is a scientist
//   WorksAt(person, inst)        - extracted affiliations
//   LocatedIn(inst, city)        - extracted locations
//
// Query: which cities likely host an institution employing a scientist?
//   q(city) :- Scientist(p), WorksAt(p, i), LocatedIn(i, city)
// This is an unsafe (#P-hard) chain query; dissociation ranks the cities.
#include <cstdio>

#include "src/dissodb.h"

using namespace dissodb;  // NOLINT: example brevity

int main() {
  Database db;
  StringPool* pool = db.strings();

  auto str = [&](const char* s) { return Value::StringCode(pool->Intern(s)); };

  {
    RelationSchema s;
    s.name = "Scientist";
    s.column_names = {"person"};
    s.column_types = {ValueType::kString};
    Table t(s);
    t.AddRow({str("ada")}, 0.95);
    t.AddRow({str("grace")}, 0.9);
    t.AddRow({str("alan")}, 0.85);
    t.AddRow({str("erwin")}, 0.6);
    t.AddRow({str("marie")}, 0.97);
    (void)db.AddTable(std::move(t));
  }
  {
    RelationSchema s;
    s.name = "WorksAt";
    s.column_names = {"person", "inst"};
    s.column_types = {ValueType::kString, ValueType::kString};
    Table t(s);
    t.AddRow({str("ada"), str("analytical_soc")}, 0.7);
    t.AddRow({str("grace"), str("navy_lab")}, 0.8);
    t.AddRow({str("grace"), str("harvard")}, 0.5);
    t.AddRow({str("alan"), str("bletchley")}, 0.9);
    t.AddRow({str("alan"), str("cambridge")}, 0.4);
    t.AddRow({str("erwin"), str("dublin_inst")}, 0.75);
    t.AddRow({str("marie"), str("sorbonne")}, 0.85);
    t.AddRow({str("marie"), str("radium_inst")}, 0.9);
    (void)db.AddTable(std::move(t));
  }
  {
    RelationSchema s;
    s.name = "LocatedIn";
    s.column_names = {"inst", "city"};
    s.column_types = {ValueType::kString, ValueType::kString};
    Table t(s);
    t.AddRow({str("analytical_soc"), str("london")}, 0.8);
    t.AddRow({str("navy_lab"), str("washington")}, 0.9);
    t.AddRow({str("harvard"), str("cambridge_ma")}, 0.95);
    t.AddRow({str("bletchley"), str("london")}, 0.6);
    t.AddRow({str("cambridge"), str("cambridge_uk")}, 0.95);
    t.AddRow({str("dublin_inst"), str("dublin")}, 0.9);
    t.AddRow({str("sorbonne"), str("paris")}, 0.95);
    t.AddRow({str("radium_inst"), str("paris")}, 0.9);
    (void)db.AddTable(std::move(t));
  }

  auto q = ParseQuery("q(city) :- Scientist(p), WorksAt(p, i), LocatedIn(i, city)",
                      pool);
  if (!q.ok()) {
    std::printf("parse error: %s\n", q.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\n", q->ToString().c_str());
  std::printf("hierarchical (safe): %s\n\n", IsHierarchical(*q) ? "yes" : "no");

  // The engine facade ranks answers by propagation score.
  QueryEngine engine = QueryEngine::Borrow(db);
  auto diss = engine.Run(*q);
  if (!diss.ok()) {
    std::printf("query failed: %s\n", diss.status().ToString().c_str());
    return 1;
  }
  std::printf("cities ranked by propagation score (upper bound):\n%s\n",
              RankingToString(diss->answers, db).c_str());

  auto exact = ExactProbabilities(db, *q);
  std::printf("cities ranked by exact probability (ground truth):\n%s\n",
              RankingToString(*exact, db).c_str());

  auto gt = AlignScores(*exact, *exact);
  auto ds = AlignScores(*exact, diss->answers);
  std::printf("AP@10 of the dissociation ranking: %.4f\n",
              AveragePrecisionAtK(gt, ds));
  for (size_t i = 0; i < gt.size(); ++i) {
    if (ds[i] + 1e-12 < gt[i]) {
      std::printf("BOUND VIOLATION at answer %zu!\n", i);
      return 1;
    }
  }
  std::printf("upper-bound property verified for every city.\n");
  return 0;
}
