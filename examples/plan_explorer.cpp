// Interactive plan explorer: give it a query in datalog syntax and it shows
// the dissociation analysis — hierarchy status, minimal cut-sets, counts,
// all minimal plans with their dissociations, and the combined single plan.
//
//   $ ./plan_explorer 'q(z) :- R(z,x), S(x,y), T(y)'
//   $ ./plan_explorer                      # uses a default 4-chain query
#include <cstdio>
#include <string>

#include "src/dissodb.h"

using namespace dissodb;  // NOLINT: example brevity

int main(int argc, char** argv) {
  std::string text = argc > 1
                         ? argv[1]
                         : "q(x0,x4) :- R1(x0,x1), R2(x1,x2), R3(x2,x3), "
                           "R4(x3,x4)";
  StringPool pool;
  auto q = ParseQuery(text, &pool);
  if (!q.ok()) {
    std::printf("parse error: %s\n", q.status().ToString().c_str());
    return 1;
  }
  std::printf("query:         %s\n", q->ToString().c_str());
  std::printf("atoms:         %d, variables: %d (existential: %d)\n",
              q->num_atoms(), q->num_vars(), MaskCount(q->EVarMask()));
  std::printf("hierarchical:  %s\n", IsHierarchical(*q) ? "yes (safe)"
                                                        : "no (#P-hard)");

  SchemaKnowledge none = SchemaKnowledge::None(*q);
  lift::SafetyAnalysis safety = lift::AnalyzeSafety(*q, none);
  if (safety.safe) {
    std::printf("lifted route:  exact safe plan (Dalvi-Suciu rules; no "
                "dissociation, no plan enumeration)\n");
  } else {
    std::printf("lifted route:  dissociation (%zu unsafe residue%s; "
                "hierarchical subqueries still compile exactly)\n",
                safety.unsafe_residues,
                safety.unsafe_residues == 1 ? "" : "s");
  }
  auto atoms = MakeWorkAtoms(*q, none);
  auto cuts = MinCuts(atoms, q->EVarMask());
  if (cuts.ok()) {
    std::printf("min-cut-sets:  ");
    for (VarMask y : *cuts) {
      std::printf("{");
      bool first = true;
      for (VarId v : MaskToVars(y)) {
        std::printf("%s%s", first ? "" : ",", q->var_name(v).c_str());
        first = false;
      }
      std::printf("} ");
    }
    std::printf("\n");
  }

  auto mp = CountMinimalPlans(*q);
  auto tp = CountTotalPlans(*q);
  auto sd = CountSafeDissociations(*q);
  auto ad = CountAllDissociations(*q);
  std::printf("counts:        #minimal-plans=%llu  #plans(Fig2)=%llu  "
              "#safe-dissociations=%llu  #dissociations=%s\n\n",
              mp.ok() ? (unsigned long long)*mp : 0ULL,
              tp.ok() ? (unsigned long long)*tp : 0ULL,
              sd.ok() ? (unsigned long long)*sd : 0ULL,
              ad.ok() ? std::to_string(*ad).c_str()
                      : ("2^" + std::to_string(DissociationExponent(*q)))
                            .c_str());

  auto plans = EnumerateMinimalPlans(*q);
  if (!plans.ok()) {
    std::printf("plan enumeration failed: %s\n",
                plans.status().ToString().c_str());
    return 1;
  }
  std::printf("minimal plans and their dissociations:\n");
  for (size_t i = 0; i < plans->size() && i < 20; ++i) {
    Dissociation d = ExtractDissociation((*plans)[i], *q);
    std::printf("  P%zu: %s\n      %s\n", i + 1,
                PlanToString((*plans)[i], *q).c_str(),
                d.ToString(*q).c_str());
  }
  if (plans->size() > 20) {
    std::printf("  ... (%zu more)\n", plans->size() - 20);
  }

  SinglePlanOptions spo;
  auto single = BuildSinglePlan(*q, none, spo);
  if (single.ok()) {
    PlanSize sz = MeasurePlan(*single);
    std::printf("\ncombined single plan (Opt. 1+2): %zu DAG nodes "
                "(%zu as a tree)\n%s",
                sz.dag_nodes, sz.tree_nodes,
                PlanToTreeString(*single, *q).c_str());
  }

  // End-to-end: evaluate the query on a small random instance through the
  // QueryEngine facade.
  Rng rng(7);
  RandomInstanceSpec ispec;
  ispec.max_rows = 6;
  ispec.domain = 4;
  Database db = RandomDatabaseFor(*q, &rng, ispec);
  QueryEngine engine = QueryEngine::Borrow(db);
  auto res = engine.Run(*q);
  if (res.ok()) {
    std::printf("\nsample evaluation on a random instance "
                "(%zu answers, %zu plan nodes evaluated):\n%s",
                res->answers.size(), res->nodes_evaluated,
                RankingToString(res->answers, db, 5).c_str());
  }

  // Anytime verdict: the same query through the guarantee-aware entry
  // point — safe queries come back exact, unsafe ones certify their top-3
  // order by refining only the answers contesting the rank boundary.
  {
    auto p = engine.Prepare(*q);
    if (p.ok()) {
      GuaranteeSpec gspec;
      gspec.top_k = 3;
      auto any = engine.RunWithGuarantees(*p, {}, gspec);
      if (any.ok()) {
        const char* verdict = AnytimeVerdictName(any->verdict);
        if (any->verdict == AnytimeVerdict::kCertified) {
          std::printf("\nanytime verdict: certified@%zu (refined %zu of %zu "
                      "answers in %zu rounds)\n",
                      any->certified_prefix, any->refined_answers,
                      any->answers.size(), any->refine_rounds);
        } else {
          std::printf("\nanytime verdict: %s (%zu answers)\n", verdict,
                      any->answers.size());
        }
        for (size_t i = 0; i < std::min<size_t>(3, any->answers.size());
             ++i) {
          const auto& a = any->answers[i];
          std::printf("  #%zu p in [%.6f, %.6f]%s\n", i + 1, a.lower,
                      a.upper, a.certified ? "  (certified)" : "");
        }
      }
    }
  }

  // Observability: the same execution traced. The span tree is an
  // EXPLAIN-ANALYZE view of the evaluation — one span per plan node with
  // wall time, row counts, zone-map pruning, cache interactions, and the
  // SIMD path taken; ToChromeJson() of the same trace loads in Perfetto.
  {
    auto p = engine.Prepare(*q);
    auto traced =
        p.ok() ? engine.Execute(*p, Bindings().EnableTrace())
               : Result<QueryResult>(p.status());
    if (traced.ok() && traced->trace != nullptr) {
      std::printf("\ntraced execution (span tree):\n%s",
                  traced->trace->ToText().c_str());
      std::printf("Perfetto: QueryResult::trace->ToChromeJson() (%zu bytes "
                  "here) loads in ui.perfetto.dev / chrome://tracing\n",
                  traced->trace->ToChromeJson().size());
    }
  }

  // Serving path: the same query three times as one batch — the compiled
  // plan comes from the plan cache and the duplicate evaluations are
  // served from the shared subplan result cache. A fourth prepared handle
  // under renamed variables canonicalizes to the same artifact.
  auto batch = engine.RunBatch(std::vector<ConjunctiveQuery>{*q, *q, *q});
  {
    ConjunctiveQuery renamed;
    renamed.SetName(q->name());
    std::vector<VarId> newid(q->num_vars(), -1);
    for (VarId v = q->num_vars() - 1; v >= 0; --v) {
      newid[v] = renamed.AddVar("r_" + q->var_name(v));
    }
    for (VarId h : q->head_vars()) (void)renamed.AddHeadVar(newid[h]);
    for (int i = 0; i < q->num_atoms(); ++i) {
      Atom atom = q->atom(i);
      for (Term& t : atom.terms) {
        if (t.is_var) t.var = newid[t.var];
      }
      (void)renamed.AddAtom(std::move(atom));
    }
    auto prepared = engine.Prepare(renamed);
    if (prepared.ok()) {
      std::printf("\nprepared handle for a variable-renamed spelling:\n"
                  "  canonical key:  %s\n  plan cache hit: %s, "
                  "answer remap needed: %s\n",
                  prepared->cache_key().c_str(),
                  prepared->from_plan_cache() ? "yes" : "no",
                  prepared->needs_remap() ? "yes" : "no");
    }
  }
  if (batch.ok()) {
    EngineStats s = engine.stats();
    std::printf("\nengine stats after Run + RunBatch{3 copies} + Prepare:\n");
    std::printf("  queries:            %zu (%zu async), %zu prepares\n",
                s.queries, s.batch_queries, s.prepared_queries);
    std::printf("  plan cache:         %zu hits, %zu misses (LRU); "
                "%zu remapped executions, %zu canonical-remap hits\n",
                s.plan_cache_hits, s.plan_cache_misses, s.canonical_remaps,
                s.canonical_remap_hits);
    std::printf("  result cache:       %zu hits, %zu misses, %zu in-flight "
                "waits, %zu evictions (%zu version-stale sweeps), "
                "%zu entries\n",
                s.result_cache_hits, s.result_cache_misses,
                s.result_cache_in_flight_waits, s.result_cache_evictions,
                s.result_cache_stale_evictions, s.result_cache_entries);
    std::printf("  commit pipeline:    %zu entries delta-maintained across "
                "append-only commits, %zu swept\n",
                s.result_cache_delta_maintained, s.result_cache_swept);
    std::printf("  opt3 reductions:    %zu cached, %zu computed\n",
                s.reduction_cache_hits, s.reduction_cache_misses);
    std::printf("  scheduler tasks:    %zu\n", s.tasks_executed);
    std::printf("  chunked scans:      %zu filtered (%zu parallel), "
                "%zu chunks scanned, %zu pruned by zone maps, "
                "%zu/%zu rows selected\n",
                s.scans.filtered_scans, s.scans.parallel_scans,
                s.scans.chunks_scanned, s.scans.chunks_pruned,
                s.scans.rows_selected, s.scans.rows_scanned);
    std::printf("  semi-joins:         %zu reductions, %zu bloom filters "
                "built, %zu probes skipped\n",
                s.semijoin_reductions, s.bloom_filters_built,
                s.bloom_probes_skipped);
    std::printf("  traces recorded:    %zu\n", s.traces_recorded);
    std::printf("  safe-plan router:   %zu exact-routed, %zu with unsafe "
                "residues, %zu legacy fallbacks\n",
                s.safe_plan_routed, s.safe_plan_unsafe_residue,
                s.safe_plan_fallback);
    auto compile =
        engine.metrics().histogram("engine.safe_plan.compile_ns")->Snapshot();
    if (compile.count > 0) {
      std::printf("  lifted compiles:    p50=%.0fns max=%lluns over %llu "
                  "compiles\n",
                  compile.p50(), static_cast<unsigned long long>(compile.max),
                  static_cast<unsigned long long>(compile.count));
    }
    auto lat = engine.metrics().histogram("engine.execute_ns")->Snapshot();
    std::printf("  execute latency:    p50=%.0fns p95=%.0fns p99=%.0fns "
                "max=%lluns over %llu executions\n",
                lat.p50(), lat.p95(), lat.p99(),
                static_cast<unsigned long long>(lat.max),
                static_cast<unsigned long long>(lat.count));
  }

  // Prometheus text exposition of the whole registry — counters, gauges,
  // and cumulative-le histogram series, ready for a /metrics endpoint.
  {
    std::string prom = engine.metrics().PrometheusText();
    size_t lines = 0, pos = 0;
    while (lines < 8 && (pos = prom.find('\n', pos)) != std::string::npos) {
      ++pos;
      ++lines;
    }
    std::printf("\nPrometheus exposition (first %zu of %zu bytes):\n%.*s...\n",
                pos, prom.size(), static_cast<int>(pos), prom.c_str());
  }
  return 0;
}
