// Schema knowledge (Section 3.3): deterministic relations and functional
// dependencies can make a #P-hard query safe — and the plan enumeration
// recognizes it, returning a single exact plan.
//
// Scenario: a product catalog where the Category table is deterministic
// (curated, no uncertainty) and a registration table satisfies an FD.
#include <cstdio>

#include "src/dissodb.h"

using namespace dissodb;  // NOLINT: example brevity

void Report(const char* title, const ConjunctiveQuery& q,
            const SchemaKnowledge& sk, const Database& db) {
  auto plans = EnumerateMinimalPlans(q, sk);
  std::printf("%s\n  plans: %zu%s\n", title, plans->size(),
              plans->size() == 1 ? "  -> SAFE (exact)" : "  -> unsafe");
  for (const auto& p : *plans) {
    std::printf("    %s\n", PlanToString(p, q).c_str());
  }
  QueryEngine engine = QueryEngine::Borrow(db);
  auto rho = engine.Run(q);
  auto exact = ExactProbabilities(db, q);
  double r = rho->answers.empty() ? 0 : rho->answers[0].score;
  double e = exact->empty() ? 0 : (*exact)[0].score;
  std::printf("  rho(q) = %.6f, exact = %.6f%s\n\n", r, e,
              std::abs(r - e) < 1e-9 ? "  (equal)" : "");
}

int main() {
  // q() :- Review(prod), InCategory(prod, cat), Category(cat)
  auto q = ParseQuery("q() :- Review(x), InCategory(x,y), Category(y)");

  // Database: reviews are uncertain; category assignments are uncertain;
  // the category list itself is curated (deterministic).
  auto build = [&](bool det_category, bool fd_on_incategory) {
    Database db;
    Table r(RelationSchema::AllInt64("Review", 1));
    r.AddRow({Value::Int64(1)}, 0.9);
    r.AddRow({Value::Int64(2)}, 0.6);
    r.AddRow({Value::Int64(3)}, 0.4);
    RelationSchema ic_schema = RelationSchema::AllInt64("InCategory", 2);
    if (fd_on_incategory) {
      // Every product belongs to exactly one category: prod -> cat.
      ic_schema.fds.push_back(FunctionalDependency{{0}, {1}});
    }
    Table ic(ic_schema);
    ic.AddRow({Value::Int64(1), Value::Int64(10)}, 0.8);
    ic.AddRow({Value::Int64(2), Value::Int64(10)}, 0.7);
    ic.AddRow({Value::Int64(3), Value::Int64(20)}, 0.9);
    if (!fd_on_incategory) {
      ic.AddRow({Value::Int64(1), Value::Int64(20)}, 0.5);  // violates FD
    }
    Table c(RelationSchema::AllInt64("Category", 1, det_category));
    c.AddRow({Value::Int64(10)}, det_category ? 1.0 : 0.95);
    c.AddRow({Value::Int64(20)}, det_category ? 1.0 : 0.85);
    (void)db.AddTable(std::move(r));
    (void)db.AddTable(std::move(ic));
    (void)db.AddTable(std::move(c));
    return db;
  };

  std::printf("query: %s\n", (*q).ToString().c_str());
  std::printf("hierarchical: %s -> #P-hard without schema knowledge\n\n",
              IsHierarchical(*q) ? "yes" : "no");

  {
    Database db = build(false, false);
    auto sk = SchemaKnowledge::FromDatabase(*q, db);
    Report("1) No schema knowledge:", *q, *sk, db);
  }
  {
    Database db = build(true, false);
    auto sk = SchemaKnowledge::FromDatabase(*q, db);
    Report("2) Category is deterministic (Section 3.3.1):", *q, *sk, db);
  }
  {
    Database db = build(false, true);
    auto st = (*db.GetTable("InCategory"))->ValidateFDs();
    std::printf("   (FD prod -> cat validated on data: %s)\n",
                st.ok() ? "holds" : st.ToString().c_str());
    auto sk = SchemaKnowledge::FromDatabase(*q, db);
    Report("3) InCategory satisfies FD prod -> cat (Section 3.3.2):", *q,
           *sk, db);
  }
  return 0;
}
